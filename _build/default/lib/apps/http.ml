open Smapp_sim
open Smapp_mptcp

let request_size_default = 120 (* a GET line plus headers *)

let server endpoint ~port ~response_bytes =
  Endpoint.listen endpoint ~port (fun conn ->
      let got = ref 0 in
      Connection.set_receive conn (fun len ->
          let before = !got in
          got := !got + len;
          (* answer once the (fixed-size) request is fully in *)
          if before < request_size_default && !got >= request_size_default then begin
            Connection.send conn response_bytes;
            Connection.close conn
          end))

type client_stats = {
  mutable completed : int;
  mutable failed : int;
  mutable response_times : float list;
}

let client endpoint ~src ~dst ?(request_bytes = request_size_default) ~response_bytes
    ~requests ?(gap = Time.span_ms 1) ~on_done () =
  let stats = { completed = 0; failed = 0; response_times = [] } in
  let engine = Endpoint.engine endpoint in
  let rec issue remaining =
    if remaining <= 0 then on_done stats
    else begin
      let started = Engine.now engine in
      let conn = Endpoint.connect endpoint ~src ~dst () in
      let received = ref 0 in
      let settled = ref false in
      (* like a real HTTP/1.0 client, move on as soon as the response body is
         fully read — TCP teardown of the old connection overlaps the next
         request *)
      let next () =
        if not !settled then begin
          settled := true;
          ignore (Engine.after engine gap (fun () -> issue (remaining - 1)))
        end
      in
      Connection.set_receive conn (fun len ->
          received := !received + len;
          if !received >= response_bytes && not !settled then begin
            stats.completed <- stats.completed + 1;
            stats.response_times <-
              Time.span_to_float_s (Time.diff (Engine.now engine) started)
              :: stats.response_times;
            next ()
          end);
      Connection.subscribe conn (function
        | Connection.Established -> Connection.send conn request_bytes
        | Connection.Closed ->
            if !received < response_bytes then stats.failed <- stats.failed + 1;
            next ()
        | _ -> ())
    end
  in
  issue requests;
  stats
