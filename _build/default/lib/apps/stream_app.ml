open Smapp_sim
open Smapp_mptcp

type sender = {
  conn : Connection.t;
  block_bytes : int;
  period : Time.span;
  total_blocks : int;
  mutable sent : int;
  mutable t0 : Time.t option;
}

let blocks_sent s = s.sent
let start_time s = s.t0

let sender conn ?(block_bytes = 64 * 1024) ?(period = Time.span_s 1) ~blocks () =
  let s = { conn; block_bytes; period; total_blocks = blocks; sent = 0; t0 = None } in
  let engine = Connection.engine conn in
  let start () =
    s.t0 <- Some (Engine.now engine);
    Connection.send conn s.block_bytes;
    s.sent <- 1;
    if s.total_blocks > 1 then
      ignore
        (Engine.every engine s.period (fun () ->
             Connection.send conn s.block_bytes;
             s.sent <- s.sent + 1;
             if s.sent >= s.total_blocks then begin
               Connection.close conn;
               `Stop
             end
             else `Continue))
    else Connection.close conn
  in
  if Connection.established conn then start ()
  else
    Connection.subscribe conn (function
      | Connection.Established -> start ()
      | _ -> ());
  s

type receiver = {
  r_block_bytes : int;
  r_period : Time.span;
  r_blocks : int;
  mutable r_t0 : Time.t option;
  mutable r_received : int;
  mutable r_delays : float list; (* newest first *)
}

let block_delays r = List.rev r.r_delays
let blocks_completed r = List.length r.r_delays

let receiver conn ?(block_bytes = 64 * 1024) ?(period = Time.span_s 1) ~blocks () =
  let r =
    {
      r_block_bytes = block_bytes;
      r_period = period;
      r_blocks = blocks;
      r_t0 = None;
      r_received = 0;
      r_delays = [];
    }
  in
  let engine = Connection.engine conn in
  let anchor () = if r.r_t0 = None then r.r_t0 <- Some (Engine.now engine) in
  if Connection.established conn then anchor ()
  else
    Connection.subscribe conn (function
      | Connection.Established -> anchor ()
      | _ -> ());
  Connection.set_receive conn (fun len ->
      anchor ();
      let before = r.r_received in
      r.r_received <- r.r_received + len;
      let completed_before = before / r.r_block_bytes in
      let completed_now = min r.r_blocks (r.r_received / r.r_block_bytes) in
      let t0 = Option.get r.r_t0 in
      for k = completed_before to completed_now - 1 do
        (* block k was scheduled at t0 + k * period *)
        let scheduled = Time.add t0 (Time.span_scale k r.r_period) in
        let delay = Time.span_to_float_s (Time.diff (Engine.now engine) scheduled) in
        r.r_delays <- delay :: r.r_delays
      done);
  r
