(** A minimal HTTP/1.0-style request/response workload: the §4.5 experiment
    runs "one thousand consecutive HTTP/1.0 GET queries for a 512 KB file"
    against a lighttpd server. One connection per request; the server sends
    the response and closes. *)

open Smapp_sim
open Smapp_netsim
open Smapp_mptcp

val server : Endpoint.t -> port:int -> response_bytes:int -> unit
(** Listen and answer every request with [response_bytes], then close. *)

type client_stats = {
  mutable completed : int;
  mutable failed : int;
  mutable response_times : float list;  (** seconds, newest first *)
}

val client :
  Endpoint.t ->
  src:Ip.t ->
  dst:Ip.endpoint ->
  ?request_bytes:int ->
  response_bytes:int ->
  requests:int ->
  ?gap:Time.span ->
  on_done:(client_stats -> unit) ->
  unit ->
  client_stats
(** Issue [requests] GETs back to back (a new connection each, [gap] after
    the previous one finishes, default 1 ms); [on_done] fires after the
    last one. *)
