open Smapp_sim
open Smapp_mptcp

let sender conn ~bytes =
  let start () =
    if bytes > 0 then Connection.send conn bytes;
    Connection.close conn
  in
  if Connection.established conn then start ()
  else
    Connection.subscribe conn (function
      | Connection.Established -> start ()
      | _ -> ())

type receiver_stats = {
  mutable received : int;
  mutable completed_at : Time.t option;
  mutable closed_at : Time.t option;
}

let receiver conn ~expect =
  let stats = { received = 0; completed_at = None; closed_at = None } in
  let engine = Connection.engine conn in
  Connection.set_receive conn (fun len ->
      stats.received <- stats.received + len;
      if stats.received >= expect && stats.completed_at = None then
        stats.completed_at <- Some (Engine.now engine));
  Connection.subscribe conn (function
    | Connection.Closed -> stats.closed_at <- Some (Engine.now engine)
    | _ -> ());
  stats
