(** A long-lived connection (ssh, chat, mobile push notifications — §4.1)
    that exchanges a small message every interval and cares about the
    connection staying usable, not about throughput. *)

open Smapp_sim
open Smapp_mptcp

type t

val start :
  Connection.t ->
  ?message_bytes:int ->
  ?interval:Time.span ->
  duration:Time.span ->
  unit ->
  t
(** Send [message_bytes] every [interval] (defaults 64 B, 20 s — RFC 3948's
    keepalive cadence) for [duration], then close. *)

val messages_sent : t -> int

val echo_peer : Connection.t -> unit
(** The other side: swallow everything (and keep the connection open). *)
