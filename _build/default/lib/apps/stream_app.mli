(** The §4.3 streaming workload: the sender emits one [block_bytes] block
    every [period] and expects each block delivered within the period; the
    receiver timestamps the completion of every block against the sender's
    schedule. *)

open Smapp_sim
open Smapp_mptcp

type sender

val sender :
  Connection.t -> ?block_bytes:int -> ?period:Time.span -> blocks:int -> unit -> sender
(** Starts at establishment: block [k] is sent at [t0 + k * period] where
    [t0] is the establishment time. Defaults: 64 KiB blocks every 1 s. The
    connection closes after the last block. *)

val blocks_sent : sender -> int
val start_time : sender -> Time.t option

type receiver

val receiver :
  Connection.t -> ?block_bytes:int -> ?period:Time.span -> blocks:int -> unit -> receiver
(** Records each block's completion delay: the time from the block's
    scheduled send instant (receiver clock, anchored at its own
    establishment time) to the arrival of the block's last byte. *)

val block_delays : receiver -> float list
(** Completion delays in seconds, in block order, for blocks fully
    received so far. *)

val blocks_completed : receiver -> int
