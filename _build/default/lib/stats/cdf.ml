type t = { sorted : float array }

let of_samples samples =
  if samples = [] then invalid_arg "Cdf.of_samples: empty";
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Index of the first element > x, by binary search. *)
let upper_bound a x =
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then search (mid + 1) hi else search lo mid
    end
  in
  search 0 (Array.length a)

let eval t x = float_of_int (upper_bound t.sorted x) /. float_of_int (Array.length t.sorted)

let quantile t q =
  if q <= 0.0 || q > 1.0 then invalid_arg "Cdf.quantile: q out of (0,1]";
  let n = Array.length t.sorted in
  let k = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  t.sorted.(max 0 (min (n - 1) k))

let min_value t = t.sorted.(0)
let max_value t = t.sorted.(Array.length t.sorted - 1)

let points t =
  let n = Array.length t.sorted in
  let rec collect i acc =
    if i < 0 then acc
    else begin
      let x = t.sorted.(i) in
      match acc with
      | (x', _) :: _ when x = x' -> collect (i - 1) acc
      | _ -> collect (i - 1) ((x, float_of_int (upper_bound t.sorted x) /. float_of_int n) :: acc)
    end
  in
  collect (n - 1) []

let pp_points ?(n = 20) ppf t =
  let count = max 2 n in
  for i = 1 to count do
    let q = float_of_int i /. float_of_int count in
    Format.fprintf ppf "%6.3f  %g@." q (quantile t q)
  done
