type t = { label : string; mutable points : (float * float) list; mutable n : int }

let create ?(label = "") () = { label; points = []; n = 0 }
let label t = t.label

let add t time value =
  t.points <- (time, value) :: t.points;
  t.n <- t.n + 1

let length t = t.n
let to_list t = List.rev t.points

let last t = match t.points with [] -> None | p :: _ -> Some p

let values t = Array.of_list (List.rev_map snd t.points)
let times t = Array.of_list (List.rev_map fst t.points)

let span t =
  match t.points with
  | [] -> None
  | (last_t, _) :: _ ->
      let rec first = function [ (ft, _) ] -> ft | _ :: rest -> first rest | [] -> last_t in
      Some (first t.points, last_t)
