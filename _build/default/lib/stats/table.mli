(** Fixed-width ASCII tables for experiment reports. *)

type t

val create : string list -> t
(** [create headers]. *)

val add_row : t -> string list -> unit
(** Row arity must match the header arity. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
