type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let widths t =
  let all = t.headers :: List.rev t.rows in
  let ncols = List.length t.headers in
  let w = Array.make ncols 0 in
  let update row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  List.iter update all;
  w

let pp ppf t =
  let w = widths t in
  let pp_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.pp_print_string ppf "  ";
        Format.fprintf ppf "%-*s" w.(i) cell)
      row;
    Format.pp_print_newline ppf ()
  in
  pp_row t.headers;
  pp_row (List.map (fun n -> String.make n '-') (Array.to_list w));
  List.iter pp_row (List.rev t.rows)

let to_string t = Format.asprintf "%a" pp t
