(** Append-only time series of (time, value) points.

    Used to record traces such as Fig 2a's data-sequence-number-vs-time
    evolution per subflow. *)

type t

val create : ?label:string -> unit -> t
val label : t -> string
val add : t -> float -> float -> unit
(** [add t time value]; times should be non-decreasing but this is not
    enforced (reinjections can log slightly out of order). *)

val length : t -> int
val to_list : t -> (float * float) list
val last : t -> (float * float) option

val values : t -> float array
val times : t -> float array

val span : t -> (float * float) option
(** [(first_time, last_time)], [None] when empty. *)
