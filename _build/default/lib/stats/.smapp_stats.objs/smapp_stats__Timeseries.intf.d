lib/stats/timeseries.mli:
