lib/stats/ascii_plot.ml: Array Buffer Cdf Float List Printf String
