(** Rough terminal plots, good enough to eyeball the shape of a figure.

    Used by the bench harness and the CLI to render CDFs and traces the way
    the paper plots them, without any graphics dependency. *)

val cdfs :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  (string * Cdf.t) list ->
  string
(** Overlay several CDFs; each series gets a distinct glyph. *)

val scatter :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** Overlay several point series (e.g. Fig 2a's per-subflow seq traces). *)
