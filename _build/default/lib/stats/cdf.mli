(** Empirical cumulative distribution functions.

    The paper reports most results as CDFs (Figs 2b, 2c, 3); this module
    builds them from sample lists and evaluates/prints them. *)

type t
(** An immutable empirical CDF. *)

val of_samples : float list -> t
(** Raises [Invalid_argument] on the empty list. *)

val size : t -> int

val eval : t -> float -> float
(** [eval cdf x] = fraction of samples [<= x], in [\[0,1\]]. *)

val quantile : t -> float -> float
(** [quantile cdf q] for [q] in [(0,1\]]: smallest sample [x] with
    [eval cdf x >= q]. *)

val min_value : t -> float
val max_value : t -> float

val points : t -> (float * float) list
(** Step points [(x, F(x))] at each distinct sample, ascending. *)

val pp_points : ?n:int -> Format.formatter -> t -> unit
(** Print at most [n] (default 20) evenly spaced quantile rows. *)
