(* Quickstart: a Multipath TCP connection over two paths.

   Builds a two-path topology (think: a phone with WiFi + cellular), opens an
   MPTCP connection, joins the second path, transfers 2 MB and shows that
   both paths carried data.

     dune exec examples/quickstart.exe
*)

open Smapp_sim
open Smapp_netsim
open Smapp_mptcp

let () =
  (* 1. a simulation engine: all time and randomness flow through it *)
  let engine = Engine.create ~seed:1 () in

  (* 2. two disjoint 5 Mbps / 10 ms paths between client and server *)
  let topo = Topology.parallel_paths engine ~n:2 () in
  let path0 = List.nth topo.Topology.paths 0 in
  let path1 = List.nth topo.Topology.paths 1 in

  (* 3. MPTCP endpoints (socket layer) on both hosts *)
  let client = Endpoint.of_host topo.Topology.client in
  let server = Endpoint.of_host topo.Topology.server in

  (* 4. server: accept connections on port 80 and count the bytes *)
  let received = ref 0 in
  Endpoint.listen server ~port:80 (fun conn ->
      Printf.printf "[server] accepted connection, token=%08x\n"
        (Connection.local_token conn);
      Connection.set_receive conn (fun len -> received := !received + len));

  (* 5. client: connect over path 0 (this sends the MP_CAPABLE SYN) *)
  let conn =
    Endpoint.connect client ~src:path0.Topology.client_addr
      ~dst:(Ip.endpoint path0.Topology.server_addr 80)
      ()
  in

  (* 6. watch the connection's life; join path 1 once established *)
  Connection.subscribe conn (fun ev ->
      Format.printf "[client] %.3fs  %a@."
        (Time.to_float_s (Engine.now engine))
        Connection.pp_event ev;
      match ev with
      | Connection.Established ->
          (match
             Connection.add_subflow conn ~src:path1.Topology.client_addr
               ~dst:(Ip.endpoint path1.Topology.server_addr 80)
               ()
           with
          | Ok _ -> ()
          | Error e -> Printf.printf "join failed: %s\n" e);
          Connection.send conn 2_000_000;
          Connection.close conn
      | Connection.Data_received _ | Connection.Subflow_established _
      | Connection.Subflow_closed _ | Connection.Subflow_rto _
      | Connection.Remote_add_addr _ | Connection.Remote_rem_addr _
      | Connection.Closed ->
          ());

  (* 7. run the simulation *)
  Engine.run ~until:(Time.add Time.zero (Time.span_s 60)) engine;

  (* 8. results *)
  Printf.printf "\nserver received %d bytes in %.2f simulated seconds\n" !received
    (Time.to_float_s (Engine.now engine));
  List.iteri
    (fun i (p : Topology.path) ->
      let st = Link.stats p.Topology.cable.Topology.fwd in
      Printf.printf "path %d carried %d bytes (%d segments)\n" i st.Link.bytes_delivered
        st.Link.delivered)
    topo.Topology.paths;
  Printf.printf "both paths used: the two 5 Mbps links aggregate.\n"
