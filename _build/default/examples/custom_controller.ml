(* Writing your own subflow controller against the PM library (paper §3).

   The paper's whole point: applications know things the kernel cannot.
   This controller implements a toy policy — "never run more than 90 seconds
   on the same subflow; rotate to the other interface" (say, to spread radio
   duty cycle between two links). It uses nothing but the userspace PM
   library: netlink events in, netlink commands out.

     dune exec examples/custom_controller.exe
*)

open Smapp_sim
open Smapp_netsim
open Smapp_mptcp
module Setup = Smapp_core.Setup
module Pm_msg = Smapp_core.Pm_msg
module Pm_lib = Smapp_core.Pm_lib

(* --- the controller: ~60 lines, pure userspace ----------------------------- *)

type rotator = {
  pm : Pm_lib.t;
  interfaces : Ip.t list;
  period : Time.span;
  mutable rotations : int;
}

let start_rotator pm ~interfaces ~period =
  let t = { pm; interfaces; period; rotations = 0 } in
  (* per connection: remember the active subflow and where it runs *)
  let active : (int, int * Ip.t * Ip.endpoint) Hashtbl.t = Hashtbl.create 7 in
  Pm_lib.on_event pm
    ~mask:(Pm_msg.Mask.sub_estab lor Pm_msg.Mask.closed)
    (function
      | Pm_msg.Sub_estab { token; sub_id; flow; _ } ->
          Hashtbl.replace active token (sub_id, flow.Ip.src.Ip.addr, flow.Ip.dst)
      | Pm_msg.Closed { token } -> Hashtbl.remove active token
      | _ -> ());
  let rotate () =
    Hashtbl.iter
      (fun token (sub_id, current_src, dst) ->
        (* pick the next interface after the current one *)
        let next =
          match List.find_opt (fun a -> not (Ip.equal a current_src)) t.interfaces with
          | Some a -> a
          | None -> current_src
        in
        if not (Ip.equal next current_src) then begin
          t.rotations <- t.rotations + 1;
          Format.printf "%.1fs  rotating token=%08x from %a to %a@."
            (Time.to_float_s (Engine.now (Pm_lib.engine pm)))
            token Ip.pp current_src Ip.pp next;
          (* make-before-break: open the new subflow, then retire the old *)
          Pm_lib.create_subflow pm ~token ~src:next ~dst
            ~on_result:(function
              | Ok () -> Pm_lib.remove_subflow pm ~token ~sub_id ()
              | Error e -> Printf.printf "rotation failed: %s\n" e)
            ()
        end)
      active
  in
  ignore
    (Engine.every (Pm_lib.engine pm) t.period (fun () ->
         rotate ();
         `Continue));
  t

(* --- scenario ---------------------------------------------------------------- *)

let () =
  let engine = Engine.create ~seed:9 () in
  let topo = Topology.parallel_paths engine ~n:2 () in
  let p0 = List.nth topo.Topology.paths 0 in
  let p1 = List.nth topo.Topology.paths 1 in
  let client = Endpoint.of_host topo.Topology.client in
  let server = Endpoint.of_host topo.Topology.server in
  let setup = Setup.attach client in
  let rotator =
    start_rotator setup.Setup.pm
      ~interfaces:[ p0.Topology.client_addr; p1.Topology.client_addr ]
      ~period:(Time.span_s 90)
  in
  let received = ref 0 in
  Endpoint.listen server ~port:80 (fun conn ->
      Connection.set_receive conn (fun len -> received := !received + len));
  let conn =
    Endpoint.connect client ~src:p0.Topology.client_addr
      ~dst:(Ip.endpoint p0.Topology.server_addr 80)
      ()
  in
  (* a long-lived trickle: 20 KB every second for 5 minutes *)
  Connection.subscribe conn (function
    | Connection.Established ->
        ignore
          (Engine.every engine (Time.span_s 1) (fun () ->
               if Connection.closed conn then `Stop
               else begin
                 Connection.send conn 20_000;
                 `Continue
               end))
    | _ -> ());
  Engine.run ~until:(Time.add Time.zero (Time.span_s 300)) engine;
  Printf.printf "\nrotations: %d (expected 3 in 300 s at one per 90 s)\n"
    rotator.rotations;
  Printf.printf "delivered: %d bytes; per-path byte counts:\n" !received;
  List.iteri
    (fun i (p : Topology.path) ->
      Printf.printf "  path %d: %d bytes\n" i
        (Link.stats p.Topology.cable.Topology.fwd).Link.bytes_delivered)
    topo.Topology.paths;
  Printf.printf "the duty cycle alternates between the two interfaces.\n"
