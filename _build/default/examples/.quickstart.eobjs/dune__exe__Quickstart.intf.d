examples/quickstart.mli:
