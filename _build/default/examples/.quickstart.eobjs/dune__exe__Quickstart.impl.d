examples/quickstart.ml: Connection Endpoint Engine Format Ip Link List Printf Smapp_mptcp Smapp_netsim Smapp_sim Time Topology
