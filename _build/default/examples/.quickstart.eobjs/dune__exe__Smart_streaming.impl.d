examples/smart_streaming.ml: Array Connection Endpoint Engine Float Ip List Printf Smapp_apps Smapp_controllers Smapp_core Smapp_mptcp Smapp_netsim Smapp_sim Smapp_stats Time Topology
