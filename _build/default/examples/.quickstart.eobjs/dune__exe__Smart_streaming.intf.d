examples/smart_streaming.mli:
