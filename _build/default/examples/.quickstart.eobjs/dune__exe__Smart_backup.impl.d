examples/smart_backup.ml: Connection Endpoint Engine Format Ip Link List Netem Printf Smapp_controllers Smapp_core Smapp_mptcp Smapp_netsim Smapp_sim Smapp_tcp Subflow Time Topology
