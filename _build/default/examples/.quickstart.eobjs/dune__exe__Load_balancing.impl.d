examples/load_balancing.ml: Endpoint Engine Host Ip Link List Path_manager Printf Smapp_apps Smapp_controllers Smapp_core Smapp_mptcp Smapp_netsim Smapp_sim Smapp_tcp Time Topology
