examples/custom_controller.ml: Connection Endpoint Engine Format Hashtbl Ip Link List Printf Smapp_core Smapp_mptcp Smapp_netsim Smapp_sim Time Topology
