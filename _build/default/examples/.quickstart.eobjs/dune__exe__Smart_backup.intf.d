examples/smart_backup.mli:
