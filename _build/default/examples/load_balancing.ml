(* Smarter exploitation of flow-based load balancing (paper §4.4, Fig 2c).

   Client and server sit behind two routers that ECMP-hash each flow onto
   one of four parallel 8 Mbps paths. ndiffports opens 5 subflows with
   random source ports and hopes they spread; the refresh controller polls
   each subflow's pacing_rate every 2.5 s and replaces the slowest with a
   fresh random port — re-rolling the dice until all four paths carry data.

     dune exec examples/load_balancing.exe
*)

open Smapp_sim
open Smapp_netsim
open Smapp_mptcp
module Setup = Smapp_core.Setup
module Refresh = Smapp_controllers.Refresh

let file_bytes = 30_000_000

let run ~use_refresh ~seed =
  let engine = Engine.create ~seed () in
  let topo = Topology.ecmp_fabric engine ~salt:seed ~n:4 () in
  let client = Endpoint.of_host ~cc:Smapp_tcp.Cc.Reno topo.Topology.client in
  let server = Endpoint.of_host ~cc:Smapp_tcp.Cc.Reno topo.Topology.server in
  let stats = ref None in
  Endpoint.listen server ~port:80 (fun conn ->
      stats := Some (Smapp_apps.Bulk.receiver conn ~expect:file_bytes));
  if use_refresh then begin
    let setup = Setup.attach client in
    ignore (Refresh.start setup.Setup.pm (Refresh.default_config ~subflows:5 ()))
  end
  else Path_manager.auto_install (Path_manager.ndiffports ~n:5) client;
  let conn =
    Endpoint.connect client
      ~src:(List.hd (Host.addresses topo.Topology.client))
      ~dst:(Ip.endpoint (List.hd (Host.addresses topo.Topology.server)) 80)
      ()
  in
  Smapp_apps.Bulk.sender conn ~bytes:file_bytes;
  Engine.run ~until:(Time.add Time.zero (Time.span_s 200)) engine;
  let completion =
    match !stats with
    | Some s -> (
        match s.Smapp_apps.Bulk.completed_at with
        | Some t -> Time.to_float_s t
        | None -> nan)
    | None -> nan
  in
  let paths_used =
    List.length
      (List.filter
         (fun (c : Topology.duplex) ->
           (Link.stats c.Topology.fwd).Link.bytes_delivered > file_bytes / 100)
         topo.Topology.core)
  in
  (completion, paths_used)

let () =
  Printf.printf "30 MB over 4 ECMP paths (8 Mbps each), 5 subflows, 4 random seeds:\n\n";
  Printf.printf "%-6s %-28s %-28s\n" "seed" "ndiffports" "refresh";
  List.iter
    (fun seed ->
      let nd_t, nd_p = run ~use_refresh:false ~seed in
      let rf_t, rf_p = run ~use_refresh:true ~seed in
      Printf.printf "%-6d %6.1f s on %d paths %12.1f s on %d paths\n" seed nd_t nd_p rf_t
        rf_p)
    [ 101; 202; 303; 404 ];
  Printf.printf
    "\nndiffports is stuck with whatever the hash gave it; refresh keeps\n\
     re-rolling the slowest subflow until all four paths are in use.\n"
