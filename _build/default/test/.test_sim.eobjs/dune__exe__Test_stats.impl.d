test/test_stats.ml: Alcotest Ascii_plot Cdf Gen List QCheck QCheck_alcotest Smapp_stats String Summary Table Timeseries
