test/test_controllers.mli:
