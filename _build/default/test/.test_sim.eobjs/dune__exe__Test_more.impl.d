test/test_more.ml: Alcotest Cc Connection Endpoint Engine Host Ip Link List Rng Segment Smapp_apps Smapp_mptcp Smapp_netsim Smapp_sim Smapp_tcp Stack Tcb Tcp_error Time Topology
