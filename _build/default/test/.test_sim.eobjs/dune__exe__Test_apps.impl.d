test/test_apps.ml: Alcotest Connection Endpoint Engine Ip List Smapp_apps Smapp_experiments Smapp_mptcp Smapp_netsim Smapp_sim Time Topology
