test/test_controllers.ml: Alcotest Connection Endpoint Engine Host Int Ip List Netem Option Smapp_apps Smapp_controllers Smapp_core Smapp_mptcp Smapp_netsim Smapp_sim Subflow Time Topology
