test/test_netlink.ml: Alcotest Engine Int64 Ip List Printf QCheck QCheck_alcotest Result Smapp_core Smapp_netlink Smapp_netsim Smapp_sim Smapp_tcp String Time
