test/test_core.ml: Alcotest Connection Endpoint Engine Host Ip List Netem Smapp_core Smapp_mptcp Smapp_netsim Smapp_sim Smapp_tcp Time Topology
