test/test_netlink.mli:
