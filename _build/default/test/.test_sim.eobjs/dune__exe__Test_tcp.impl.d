test/test_tcp.ml: Alcotest Array Cc Engine Host Int Int64 Ip Link List QCheck QCheck_alcotest Reasm Rng Rtt Seq32 Smapp_netsim Smapp_sim Smapp_tcp Stack Tcb Tcp_error Time Topology
