test/test_netsim.ml: Alcotest Array Engine Host Ip Link List Netem Packet Printf QCheck QCheck_alcotest Router Smapp_netsim Smapp_sim String Time Topology
