test/test_sim.ml: Alcotest Engine Heap Int Int64 List QCheck QCheck_alcotest Rng Smapp_sim Time
