(* Tests for the netlink wire format, the kernel<->user channel, and the
   MPTCP path-manager message family. *)

open Smapp_sim
open Smapp_netsim
module Wire = Smapp_netlink.Wire
module Channel = Smapp_netlink.Channel
module Pm_msg = Smapp_core.Pm_msg

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* --- wire format ------------------------------------------------------------- *)

let msg ~ty ~seq attrs = { Wire.header = { Wire.msg_type = ty; flags = 0; seq; pid = 0 }; attrs }

let test_wire_roundtrip_simple () =
  let m =
    msg ~ty:7 ~seq:99
      [
        { Wire.attr_type = 1; value = Wire.U32 123456 };
        { Wire.attr_type = 2; value = Wire.U8 1 };
        { Wire.attr_type = 3; value = Wire.U64 0x1234_5678_9ABC_DEF0L };
        { Wire.attr_type = 4; value = Wire.Str "eth0" };
      ]
  in
  match Wire.decode (Wire.encode m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      checki "type" 7 m'.Wire.header.Wire.msg_type;
      checki "seq" 99 m'.Wire.header.Wire.seq;
      checki "attrs" 4 (List.length m'.Wire.attrs);
      (match Wire.get_u32 m' 1 with Ok v -> checki "u32" 123456 v | Error e -> Alcotest.fail e);
      (match Wire.get_u64 m' 3 with
      | Ok v -> Alcotest.(check int64) "u64" 0x1234_5678_9ABC_DEF0L v
      | Error e -> Alcotest.fail e);
      (match Wire.get_str m' 4 with Ok v -> checks "str" "eth0" v | Error e -> Alcotest.fail e)

let test_wire_truncated () =
  let m = msg ~ty:1 ~seq:1 [ { Wire.attr_type = 1; value = Wire.U32 5 } ] in
  let bytes = Wire.encode m in
  let cut = String.sub bytes 0 (String.length bytes - 3) in
  checkb "truncated rejected" true (Result.is_error (Wire.decode cut))

let test_wire_batch () =
  let m1 = msg ~ty:1 ~seq:1 [] in
  let m2 = msg ~ty:2 ~seq:2 [ { Wire.attr_type = 9; value = Wire.Str "x" } ] in
  match Wire.decode_batch (Wire.encode_batch [ m1; m2 ]) with
  | Error e -> Alcotest.fail e
  | Ok msgs ->
      checki "two messages" 2 (List.length msgs);
      checki "second type" 2 (List.nth msgs 1).Wire.header.Wire.msg_type

let test_wire_missing_attr () =
  let m = msg ~ty:1 ~seq:1 [] in
  checkb "missing attr is error" true (Result.is_error (Wire.get_u32 m 42))

let wire_props =
  let attr_gen =
    QCheck.Gen.(
      map2
        (fun ty v -> { Wire.attr_type = ty; value = v })
        (int_range 0 65535)
        (oneof
           [
             map (fun v -> Wire.U8 (v land 0xff)) (int_range 0 255);
             map (fun v -> Wire.U32 (v land 0xFFFFFFFF)) (int_bound max_int);
             map (fun v -> Wire.U64 (Int64.of_int v)) (int_bound max_int);
             map (fun s -> Wire.Str s) (string_size (int_range 0 40));
           ]))
  in
  let msg_gen =
    QCheck.Gen.(
      map3
        (fun ty seq attrs -> msg ~ty ~seq attrs)
        (int_range 0 65535) (int_range 0 1000000) (list_size (int_range 0 8) attr_gen))
  in
  let arb = QCheck.make msg_gen in
  [
    QCheck.Test.make ~name:"wire roundtrip" ~count:300 arb (fun m ->
        match Wire.decode (Wire.encode m) with
        | Error _ -> false
        | Ok m' ->
            m'.Wire.header.Wire.msg_type = m.Wire.header.Wire.msg_type
            && m'.Wire.header.Wire.seq = m.Wire.header.Wire.seq
            && m'.Wire.attrs = m.Wire.attrs);
    QCheck.Test.make ~name:"wire batch roundtrip" ~count:100
      (QCheck.make QCheck.Gen.(list_size (int_range 0 5) msg_gen))
      (fun msgs ->
        match Wire.decode_batch (Wire.encode_batch msgs) with
        | Error _ -> false
        | Ok msgs' -> List.length msgs = List.length msgs');
  ]

(* --- channel ------------------------------------------------------------------ *)

let test_channel_latency () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:(Time.span_us 10) () in
  let arrived = ref None in
  Channel.on_user_receive ch (fun bytes ->
      arrived := Some (Time.to_ns (Engine.now e), bytes));
  Channel.kernel_send ch "hello";
  Engine.run e;
  match !arrived with
  | Some (t, bytes) ->
      checks "payload" "hello" bytes;
      (* 10us nominal with +-30% jitter *)
      checkb "latency in jitter band" true (t >= 7_000 && t <= 13_000)
  | None -> Alcotest.fail "nothing arrived"

let test_channel_stress_factor () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:(Time.span_us 10) () in
  Channel.set_stress_factor ch 3.0;
  let arrived = ref None in
  Channel.on_kernel_receive ch (fun _ -> arrived := Some (Time.to_ns (Engine.now e)));
  Channel.user_send ch "cmd";
  Engine.run e;
  match !arrived with
  | Some t -> checkb "stressed latency" true (t >= 21_000 && t <= 39_000)
  | None -> Alcotest.fail "nothing arrived"

let test_channel_counters () =
  let e = Engine.create () in
  let ch = Channel.create e () in
  Channel.kernel_send ch "a";
  Channel.kernel_send ch "b";
  Channel.user_send ch "c";
  checki "k2u" 2 (Channel.kernel_to_user_messages ch);
  checki "u2k" 1 (Channel.user_to_kernel_messages ch)

(* --- pm_msg codecs ---------------------------------------------------------------- *)

let sample_flow =
  Ip.flow ~src:(Ip.endpoint (Ip.v4 10 0 0 1) 43211) ~dst:(Ip.endpoint (Ip.v4 10 0 1 2) 80)

let roundtrip_event ev =
  match Pm_msg.event_of_msg (Pm_msg.event_to_msg ~seq:1 ev) with
  | Ok ev' -> ev' = ev
  | Error _ -> false

let test_event_roundtrips () =
  let events =
    [
      Pm_msg.Created { token = 0xABCD; flow = sample_flow; sub_id = 0 };
      Pm_msg.Estab { token = 0xABCD };
      Pm_msg.Closed { token = 1 };
      Pm_msg.Sub_estab { token = 2; sub_id = 3; flow = sample_flow; backup = true };
      Pm_msg.Sub_closed
        { token = 2; sub_id = 3; flow = sample_flow; error = Some Smapp_tcp.Tcp_error.Econnreset };
      Pm_msg.Sub_closed { token = 2; sub_id = 4; flow = sample_flow; error = None };
      Pm_msg.Timeout { token = 5; sub_id = 1; rto = Time.span_ms 1600; count = 3 };
      Pm_msg.Add_addr { token = 5; addr_id = 2; endpoint = Ip.endpoint (Ip.v4 10 9 9 9) 8080 };
      Pm_msg.Rem_addr { token = 5; addr_id = 2 };
      Pm_msg.New_local_addr { addr = Ip.v4 192 168 1 4; ifname = "wlan0" };
      Pm_msg.Del_local_addr { addr = Ip.v4 192 168 1 4; ifname = "wlan0" };
    ]
  in
  List.iteri
    (fun i ev -> checkb (Printf.sprintf "event %d roundtrips" i) true (roundtrip_event ev))
    events

let roundtrip_command cmd =
  match Pm_msg.command_of_msg (Pm_msg.command_to_msg ~seq:7 cmd) with
  | Ok cmd' -> cmd' = cmd
  | Error _ -> false

let test_command_roundtrips () =
  let commands =
    [
      Pm_msg.Subscribe { mask = Pm_msg.Mask.all };
      Pm_msg.Create_subflow
        {
          token = 0xFEED;
          src = Ip.v4 10 0 1 1;
          src_port = Some 5555;
          dst = Ip.endpoint (Ip.v4 10 0 1 2) 80;
          backup = true;
        };
      Pm_msg.Create_subflow
        {
          token = 0xFEED;
          src = Ip.v4 10 0 1 1;
          src_port = None;
          dst = Ip.endpoint (Ip.v4 10 0 1 2) 80;
          backup = false;
        };
      Pm_msg.Remove_subflow { token = 1; sub_id = 2 };
      Pm_msg.Set_backup { token = 1; sub_id = 2; backup = true };
      Pm_msg.Get_sub_info { token = 1; sub_id = 2 };
      Pm_msg.Get_conn_info { token = 1 };
    ]
  in
  List.iteri
    (fun i cmd ->
      checkb (Printf.sprintf "command %d roundtrips" i) true (roundtrip_command cmd))
    commands

let test_reply_roundtrips () =
  let sub_info =
    {
      Pm_msg.si_sub_id = 3;
      si_state = Smapp_tcp.Tcp_info.Established;
      si_rto = Time.span_ms 220;
      si_srtt = Some (Time.span_ms 23);
      si_cwnd = 28000;
      si_pacing_rate = 2_500_000.0;
      si_snd_una = 123456;
      si_snd_nxt = 140000;
      si_retransmits = 0;
      si_total_retrans = 7;
      si_backup = false;
    }
  in
  let conn_info =
    {
      Pm_msg.ci_token = 0xFACE;
      ci_bytes_sent = 1_000_000;
      ci_bytes_acked = 900_000;
      ci_bytes_received = 12;
      ci_subflow_count = 4;
      ci_send_buffer = 100_000;
    }
  in
  let replies =
    [ Pm_msg.Ack; Pm_msg.Error "no such connection"; Pm_msg.R_sub_info sub_info;
      Pm_msg.R_conn_info conn_info ]
  in
  List.iteri
    (fun i r ->
      let ok =
        match Pm_msg.reply_of_msg (Pm_msg.reply_to_msg ~seq:3 r) with
        | Ok r' -> r' = r
        | Error _ -> false
      in
      checkb (Printf.sprintf "reply %d roundtrips" i) true ok)
    replies

let test_srtt_none_roundtrip () =
  let i =
    {
      Pm_msg.si_sub_id = 0;
      si_state = Smapp_tcp.Tcp_info.Syn_sent;
      si_rto = Time.span_s 1;
      si_srtt = None;
      si_cwnd = 14000;
      si_pacing_rate = 0.0;
      si_snd_una = 0;
      si_snd_nxt = 1;
      si_retransmits = 0;
      si_total_retrans = 0;
      si_backup = false;
    }
  in
  match Pm_msg.reply_of_msg (Pm_msg.reply_to_msg ~seq:1 (Pm_msg.R_sub_info i)) with
  | Ok (Pm_msg.R_sub_info i') -> checkb "srtt none preserved" true (i'.Pm_msg.si_srtt = None)
  | _ -> Alcotest.fail "roundtrip failed"

let test_errno_codes () =
  checki "etimedout" 110 (Pm_msg.errno_code Smapp_tcp.Tcp_error.Etimedout);
  checki "econnreset" 104 (Pm_msg.errno_code Smapp_tcp.Tcp_error.Econnreset);
  checkb "0 is clean close" true (Pm_msg.errno_of_code 0 = None);
  List.iter
    (fun e ->
      checkb "errno roundtrip" true (Pm_msg.errno_of_code (Pm_msg.errno_code e) = Some e))
    Smapp_tcp.Tcp_error.[ Etimedout; Econnreset; Econnrefused; Enetunreach; Ehostunreach ]

let test_mask_of_event () =
  checki "created" Pm_msg.Mask.created
    (Pm_msg.mask_of_event (Pm_msg.Created { token = 1; flow = sample_flow; sub_id = 0 }));
  checki "timeout" Pm_msg.Mask.timeout
    (Pm_msg.mask_of_event
       (Pm_msg.Timeout { token = 1; sub_id = 0; rto = Time.span_s 1; count = 1 }));
  checki "all covers everything" 1023 Pm_msg.Mask.all

let () =
  Alcotest.run "netlink"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip_simple;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
          Alcotest.test_case "batch" `Quick test_wire_batch;
          Alcotest.test_case "missing attr" `Quick test_wire_missing_attr;
        ]
        @ List.map QCheck_alcotest.to_alcotest wire_props );
      ( "channel",
        [
          Alcotest.test_case "latency" `Quick test_channel_latency;
          Alcotest.test_case "stress factor" `Quick test_channel_stress_factor;
          Alcotest.test_case "counters" `Quick test_channel_counters;
        ] );
      ( "pm_msg",
        [
          Alcotest.test_case "events" `Quick test_event_roundtrips;
          Alcotest.test_case "commands" `Quick test_command_roundtrips;
          Alcotest.test_case "replies" `Quick test_reply_roundtrips;
          Alcotest.test_case "srtt none" `Quick test_srtt_none_roundtrip;
          Alcotest.test_case "errno codes" `Quick test_errno_codes;
          Alcotest.test_case "event masks" `Quick test_mask_of_event;
        ] );
    ]
