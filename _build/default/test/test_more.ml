(* Additional coverage: teardown paths, SACK recovery, silly-window
   avoidance, MP_FASTCLOSE, API edge cases. *)

open Smapp_sim
open Smapp_netsim
open Smapp_tcp
open Smapp_mptcp

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* --- plain-TCP fixtures -------------------------------------------------------- *)

type fixture = {
  engine : Engine.t;
  direct : Topology.direct;
  cstack : Stack.t;
  sstack : Stack.t;
  server_addr : Ip.t;
  client_addr : Ip.t;
}

let fixture ?(seed = 21) ?(rate = 10e6) ?(delay = Time.span_ms 10) () =
  let engine = Engine.create ~seed () in
  let direct = Topology.direct_link engine ~rate_bps:rate ~delay () in
  let cstack = Stack.attach direct.Topology.client in
  let sstack = Stack.attach direct.Topology.server in
  {
    engine;
    direct;
    cstack;
    sstack;
    server_addr = List.hd (Host.addresses direct.Topology.server);
    client_addr = List.hd (Host.addresses direct.Topology.client);
  }

let accept_sink ?(cbs = Tcb.null_callbacks) f =
  Stack.listen f.sstack ~port:80 (fun _ ->
      Some
        {
          Stack.acc_config = None;
          acc_synack_options = [];
          acc_callbacks = cbs;
          acc_on_created = ignore;
        })

let run f s = Engine.run ~until:(Time.add Time.zero (Time.span_ms s)) f.engine

(* --- orderly teardown from both ends --------------------------------------------- *)

let test_close_client_first () =
  let f = fixture () in
  let server_states = ref [] in
  let server_cbs =
    {
      Tcb.null_callbacks with
      Tcb.on_fin = (fun tcb -> server_states := "fin" :: !server_states; Tcb.close tcb);
      on_close = (fun _ err -> server_states := (if err = None then "clean" else "err") :: !server_states);
    }
  in
  accept_sink ~cbs:server_cbs f;
  let client_closed = ref None in
  let cbs =
    {
      Tcb.null_callbacks with
      Tcb.on_established = (fun tcb -> Tcb.close tcb);
      on_close = (fun _ err -> client_closed := Some err);
    }
  in
  let _ = Stack.connect f.cstack ~src:f.client_addr ~dst:(Ip.endpoint f.server_addr 80) cbs in
  run f 5000;
  checkb "client closed cleanly" true (!client_closed = Some None);
  Alcotest.(check (list string)) "server saw fin then clean close" [ "clean"; "fin" ]
    !server_states

let test_abort_resets_peer () =
  let f = fixture () in
  let server_err = ref None in
  accept_sink
    ~cbs:{ Tcb.null_callbacks with Tcb.on_close = (fun _ e -> server_err := Some e) }
    f;
  let tcb_ref = ref None in
  let cbs =
    { Tcb.null_callbacks with Tcb.on_established = (fun tcb -> tcb_ref := Some tcb) }
  in
  let _ = Stack.connect f.cstack ~src:f.client_addr ~dst:(Ip.endpoint f.server_addr 80) cbs in
  run f 500;
  (match !tcb_ref with Some tcb -> Tcb.abort tcb | None -> Alcotest.fail "not established");
  run f 1000;
  match !server_err with
  | Some (Some Tcp_error.Econnreset) -> ()
  | _ -> Alcotest.fail "server should see ECONNRESET"

let test_fin_survives_loss () =
  (* FINs are retransmitted like data *)
  let f = fixture ~seed:5 () in
  Link.set_loss f.direct.Topology.cable.Topology.fwd 0.3;
  let server_fin = ref false in
  accept_sink ~cbs:{ Tcb.null_callbacks with Tcb.on_fin = (fun _ -> server_fin := true) } f;
  let cbs =
    {
      Tcb.null_callbacks with
      Tcb.on_established =
        (fun tcb ->
          Tcb.enqueue tcb ~dsn:0 ~len:5000;
          Tcb.close tcb);
    }
  in
  let _ = Stack.connect f.cstack ~src:f.client_addr ~dst:(Ip.endpoint f.server_addr 80) cbs in
  run f 30000;
  checkb "fin delivered despite loss" true !server_fin

(* --- SACK behaviour --------------------------------------------------------------- *)

let test_sack_blocks_on_acks () =
  (* receiver advertises its out-of-order ranges *)
  let f = fixture () in
  let sacks_seen = ref 0 in
  Host.add_tap f.direct.Topology.server (fun pkt ->
      match Segment.of_packet pkt with
      | Some seg -> if seg.Segment.sack <> [] then incr sacks_seen
      | None -> ());
  Link.set_loss f.direct.Topology.cable.Topology.fwd 0.05;
  let received = ref 0 in
  accept_sink
    ~cbs:
      { Tcb.null_callbacks with Tcb.on_data = (fun _ ~dsn:_ ~len -> received := !received + len) }
    f;
  let cbs =
    {
      Tcb.null_callbacks with
      Tcb.on_established = (fun tcb -> Tcb.enqueue tcb ~dsn:0 ~len:300_000);
    }
  in
  let _ = Stack.connect f.cstack ~src:f.client_addr ~dst:(Ip.endpoint f.server_addr 80) cbs in
  run f 60_000;
  checki "all delivered" 300_000 !received;
  checkb "sack blocks were sent" true (!sacks_seen > 0)

let test_single_loss_recovers_fast () =
  (* one lost segment mid-stream: recovery well under an RTO (SACK/dupack) *)
  let f = fixture ~rate:100e6 ~delay:(Time.span_ms 5) () in
  let received = ref 0 in
  let finished = ref nan in
  accept_sink
    ~cbs:
      {
        Tcb.null_callbacks with
        Tcb.on_data =
          (fun tcb ~dsn:_ ~len ->
            received := !received + len;
            if !received >= 200_000 then
              finished := Time.to_float_s (Engine.now (Tcb.engine tcb)));
      }
    f;
  (* drop exactly one packet at ~20 ms by flipping loss to 1.0 for an instant *)
  let fwd = f.direct.Topology.cable.Topology.fwd in
  ignore
    (Engine.at f.engine (Time.add Time.zero (Time.span_ms 20)) (fun () ->
         Link.set_loss fwd 1.0;
         ignore
           (Engine.after f.engine (Time.span_us 200) (fun () -> Link.set_loss fwd 0.0))));
  let cbs =
    {
      Tcb.null_callbacks with
      Tcb.on_established = (fun tcb -> Tcb.enqueue tcb ~dsn:0 ~len:200_000);
    }
  in
  let _ = Stack.connect f.cstack ~src:f.client_addr ~dst:(Ip.endpoint f.server_addr 80) cbs in
  run f 10_000;
  checki "complete" 200_000 !received;
  (* 200 KB at 100 Mbps is ~16 ms + RTT; a 200 ms RTO stall would blow this *)
  checkb "no rto stall" true (!finished < 0.15)

(* --- silly window avoidance --------------------------------------------------------- *)

let test_no_tiny_segments () =
  let f = fixture ~rate:8e6 ~delay:(Time.span_ms 20) () in
  let tiny = ref 0 and total = ref 0 in
  Host.add_tap f.direct.Topology.client (fun pkt ->
      match Segment.of_packet pkt with
      | Some seg ->
          let len = Segment.payload_len seg in
          if len > 0 then begin
            incr total;
            if len < 1400 then incr tiny
          end
      | None -> ());
  accept_sink f;
  let cbs =
    {
      Tcb.null_callbacks with
      Tcb.on_established = (fun tcb -> Tcb.enqueue tcb ~dsn:0 ~len:1_000_000);
    }
  in
  let _ = Stack.connect f.cstack ~src:f.client_addr ~dst:(Ip.endpoint f.server_addr 80) cbs in
  run f 20_000;
  checkb "sent plenty" true (!total > 500);
  (* only the stream tail may be sub-MSS *)
  checkb "at most one tiny segment" true (!tiny <= 1)

(* --- Cc extras ---------------------------------------------------------------------- *)

let test_cc_pacing_factors () =
  let cc = Cc.create ~mss:1000 () in
  (* slow start: factor 2 *)
  let r1 = Cc.pacing_rate cc ~srtt:0.1 in
  Alcotest.(check (float 1.0)) "slow-start pacing" (2.0 *. 10_000.0 /. 0.1) r1;
  Cc.on_retransmit_loss cc ~in_flight:10_000;
  let r2 = Cc.pacing_rate cc ~srtt:0.1 in
  Alcotest.(check (float 1.0)) "CA pacing" (1.2 *. 5000.0 /. 0.1) r2;
  Alcotest.(check (float 0.0)) "no srtt, no rate" 0.0 (Cc.pacing_rate cc ~srtt:0.0)

let test_cc_idle_restart () =
  let cc = Cc.create ~mss:1000 () in
  Cc.on_ack cc ~acked:40_000 ~srtt:0.1;
  checki "grown" 50_000 (Cc.cwnd cc);
  Cc.on_idle_restart cc ~idle_rtos:2;
  checki "halved twice" 12_500 (Cc.cwnd cc);
  Cc.on_idle_restart cc ~idle_rtos:10;
  checki "floored at initial window" 10_000 (Cc.cwnd cc)

(* --- MPTCP extras -------------------------------------------------------------------- *)

let mptcp_pair ?(seed = 31) () =
  let engine = Engine.create ~seed () in
  let topo = Topology.parallel_paths engine ~n:2 () in
  let client_ep = Endpoint.of_host topo.Topology.client in
  let server_ep = Endpoint.of_host topo.Topology.server in
  let accepted = ref None in
  Endpoint.listen server_ep ~port:80 (fun conn -> accepted := Some conn);
  let p0 = List.hd topo.Topology.paths in
  let conn =
    Endpoint.connect client_ep ~src:p0.Topology.client_addr
      ~dst:(Ip.endpoint p0.Topology.server_addr 80)
      ()
  in
  (engine, topo, conn, accepted)

let test_send_after_close_raises () =
  let engine, _, conn, _ = mptcp_pair () in
  Engine.run ~until:(Time.add Time.zero (Time.span_ms 500)) engine;
  Connection.close conn;
  Alcotest.check_raises "send after close"
    (Invalid_argument "Connection.send: connection closing") (fun () ->
      Connection.send conn 100)

let test_send_nonpositive_raises () =
  let engine, _, conn, _ = mptcp_pair () in
  ignore engine;
  Alcotest.check_raises "send 0" (Invalid_argument "Connection.send: n must be positive")
    (fun () -> Connection.send conn 0)

let test_meta_abort () =
  let engine, _, conn, accepted = mptcp_pair () in
  Engine.run ~until:(Time.add Time.zero (Time.span_ms 500)) engine;
  Connection.send conn 1_000_000;
  ignore (Engine.after engine (Time.span_ms 100) (fun () -> Connection.abort conn));
  Engine.run ~until:(Time.add Time.zero (Time.span_s 5)) engine;
  checkb "client closed" true (Connection.closed conn);
  match !accepted with
  | Some sconn -> checki "server lost its subflows" 0 (List.length (Connection.subflows sconn))
  | None -> Alcotest.fail "no server conn"

let test_bytes_accounting () =
  let engine, _, conn, accepted = mptcp_pair () in
  Connection.subscribe conn (function
    | Connection.Established -> Connection.send conn 123_456
    | _ -> ());
  Engine.run ~until:(Time.add Time.zero (Time.span_s 30)) engine;
  checki "bytes_sent" 123_456 (Connection.bytes_sent conn);
  checki "bytes_acked" 123_456 (Connection.bytes_acked conn);
  checki "buffer drained" 0 (Connection.send_buffer_bytes conn);
  match !accepted with
  | Some sconn -> checki "received" 123_456 (Connection.bytes_received sconn)
  | None -> Alcotest.fail "no server conn"

let test_duplicate_add_subflow_tuple () =
  let engine, topo, conn, _ = mptcp_pair () in
  Engine.run ~until:(Time.add Time.zero (Time.span_ms 500)) engine;
  let p1 = List.nth topo.Topology.paths 1 in
  let dst = Ip.endpoint p1.Topology.server_addr 80 in
  (match Connection.add_subflow conn ~src:p1.Topology.client_addr ~src_port:7777 ~dst () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first add: %s" e);
  Engine.run ~until:(Time.add Time.zero (Time.span_s 1)) engine;
  match Connection.add_subflow conn ~src:p1.Topology.client_addr ~src_port:7777 ~dst () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate four-tuple accepted"

(* --- stats / misc ---------------------------------------------------------------------- *)

let test_rng_exponential_mean () =
  let rng = Rng.of_int 3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 5.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean about 5" true (mean > 4.8 && mean < 5.2)

let test_topology_param_padding () =
  let engine = Engine.create () in
  (* 3 paths from a 2-element rate list: last element repeats *)
  let topo =
    Topology.parallel_paths engine ~rates_bps:[ 1e6; 2e6 ] ~n:3 ()
  in
  let rates =
    List.map (fun (p : Topology.path) -> Link.rate_bps p.Topology.cable.Topology.fwd)
      topo.Topology.paths
  in
  Alcotest.(check (list (float 0.0))) "padded" [ 1e6; 2e6; 2e6 ] rates

let test_http_failed_request () =
  (* no HTTP server behind the endpoint: the request must count as failed *)
  let engine = Engine.create ~seed:4 () in
  let topo = Topology.parallel_paths engine ~n:1 () in
  let client_ep = Endpoint.of_host topo.Topology.client in
  let server_ep = Endpoint.of_host topo.Topology.server in
  (* MPTCP listener that accepts but never answers, then aborts *)
  Endpoint.listen server_ep ~port:80 (fun conn ->
      Connection.subscribe conn (function
        | Connection.Data_received _ -> Connection.abort conn
        | _ -> ()));
  let p0 = List.hd topo.Topology.paths in
  let finished = ref None in
  let _ =
    Smapp_apps.Http.client client_ep ~src:p0.Topology.client_addr
      ~dst:(Ip.endpoint p0.Topology.server_addr 80)
      ~response_bytes:10_000 ~requests:2
      ~on_done:(fun s -> finished := Some s)
      ()
  in
  Engine.run ~until:(Time.add Time.zero (Time.span_s 60)) engine;
  match !finished with
  | Some s ->
      checki "no successes" 0 s.Smapp_apps.Http.completed;
      checki "two failures" 2 s.Smapp_apps.Http.failed
  | None -> Alcotest.fail "client did not finish"

let () =
  Alcotest.run "more"
    [
      ( "tcp teardown",
        [
          Alcotest.test_case "client closes first" `Quick test_close_client_first;
          Alcotest.test_case "abort resets peer" `Quick test_abort_resets_peer;
          Alcotest.test_case "fin survives loss" `Quick test_fin_survives_loss;
        ] );
      ( "sack",
        [
          Alcotest.test_case "blocks on acks" `Quick test_sack_blocks_on_acks;
          Alcotest.test_case "single loss fast recovery" `Quick test_single_loss_recovers_fast;
        ] );
      ("sws", [ Alcotest.test_case "no tiny segments" `Quick test_no_tiny_segments ]);
      ( "cc",
        [
          Alcotest.test_case "pacing factors" `Quick test_cc_pacing_factors;
          Alcotest.test_case "idle restart" `Quick test_cc_idle_restart;
        ] );
      ( "mptcp api",
        [
          Alcotest.test_case "send after close" `Quick test_send_after_close_raises;
          Alcotest.test_case "send zero" `Quick test_send_nonpositive_raises;
          Alcotest.test_case "abort" `Quick test_meta_abort;
          Alcotest.test_case "bytes accounting" `Quick test_bytes_accounting;
          Alcotest.test_case "duplicate four-tuple" `Quick test_duplicate_add_subflow_tuple;
        ] );
      ( "misc",
        [
          Alcotest.test_case "rng exponential" `Quick test_rng_exponential_mean;
          Alcotest.test_case "topology padding" `Quick test_topology_param_padding;
          Alcotest.test_case "http failure path" `Quick test_http_failed_request;
        ] );
    ]
