(* Tests for the application workloads and a smoke pass over each
   experiment at miniature scale. *)

open Smapp_sim
open Smapp_netsim
open Smapp_mptcp
module E = Smapp_experiments

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let make ?(seed = 11) () =
  let engine = Engine.create ~seed () in
  let topo = Topology.parallel_paths engine ~n:2 () in
  let client_ep = Endpoint.of_host topo.Topology.client in
  let server_ep = Endpoint.of_host topo.Topology.server in
  (engine, topo, client_ep, server_ep)

let connect (topo : Topology.parallel) client_ep =
  let p0 = List.hd topo.Topology.paths in
  Endpoint.connect client_ep ~src:p0.Topology.client_addr
    ~dst:(Ip.endpoint p0.Topology.server_addr 80)
    ()

(* --- bulk ------------------------------------------------------------------------ *)

let test_bulk_transfer () =
  let engine, topo, client_ep, server_ep = make () in
  let stats = ref None in
  Endpoint.listen server_ep ~port:80 (fun conn ->
      stats := Some (Smapp_apps.Bulk.receiver conn ~expect:500_000));
  let conn = connect topo client_ep in
  Smapp_apps.Bulk.sender conn ~bytes:500_000;
  Engine.run ~until:(Time.add Time.zero (Time.span_s 60)) engine;
  match !stats with
  | Some s ->
      checki "all received" 500_000 s.Smapp_apps.Bulk.received;
      checkb "completion recorded" true (s.Smapp_apps.Bulk.completed_at <> None);
      checkb "close recorded" true (s.Smapp_apps.Bulk.closed_at <> None)
  | None -> Alcotest.fail "no connection accepted"

(* --- stream ---------------------------------------------------------------------- *)

let test_stream_schedule_and_delays () =
  let engine, topo, client_ep, server_ep = make () in
  let receiver = ref None in
  Endpoint.listen server_ep ~port:80 (fun conn ->
      receiver := Some (Smapp_apps.Stream_app.receiver conn ~blocks:5 ()));
  let conn = connect topo client_ep in
  let sender = Smapp_apps.Stream_app.sender conn ~blocks:5 () in
  Engine.run ~until:(Time.add Time.zero (Time.span_s 30)) engine;
  checki "five blocks sent" 5 (Smapp_apps.Stream_app.blocks_sent sender);
  match !receiver with
  | Some r ->
      checki "five blocks completed" 5 (Smapp_apps.Stream_app.blocks_completed r);
      let delays = Smapp_apps.Stream_app.block_delays r in
      (* clean 5 Mbps / 10 ms path: every block lands within ~0.2 s *)
      checkb "delays small on clean path" true (List.for_all (fun d -> d < 0.3) delays);
      checkb "delays positive" true (List.for_all (fun d -> d > 0.0) delays)
  | None -> Alcotest.fail "no receiver"

(* --- http ----------------------------------------------------------------------- *)

let test_http_request_response () =
  let engine, topo, client_ep, server_ep = make () in
  Smapp_apps.Http.server server_ep ~port:80 ~response_bytes:200_000;
  let p0 = List.hd topo.Topology.paths in
  let finished = ref None in
  let _stats =
    Smapp_apps.Http.client client_ep ~src:p0.Topology.client_addr
      ~dst:(Ip.endpoint p0.Topology.server_addr 80)
      ~response_bytes:200_000 ~requests:5
      ~on_done:(fun s -> finished := Some s)
      ()
  in
  Engine.run ~until:(Time.add Time.zero (Time.span_s 120)) engine;
  match !finished with
  | Some s ->
      checki "five ok" 5 s.Smapp_apps.Http.completed;
      checki "none failed" 0 s.Smapp_apps.Http.failed;
      checki "five timings" 5 (List.length s.Smapp_apps.Http.response_times)
  | None -> Alcotest.fail "client never finished"

(* --- keepalive ------------------------------------------------------------------- *)

let test_keepalive_cadence () =
  let engine, topo, client_ep, server_ep = make () in
  Endpoint.listen server_ep ~port:80 (fun conn -> Smapp_apps.Keepalive.echo_peer conn);
  let conn = connect topo client_ep in
  let app =
    Smapp_apps.Keepalive.start conn ~interval:(Time.span_s 10) ~duration:(Time.span_s 65) ()
  in
  Engine.run ~until:(Time.add Time.zero (Time.span_s 120)) engine;
  (* messages at 10,20,30,40,50,60 then the 70 tick stops *)
  checki "six keepalives" 6 (Smapp_apps.Keepalive.messages_sent app);
  checkb "closed at end" true (Connection.closed conn)

(* --- experiments smoke at miniature scale ------------------------------------------ *)

let test_fig2a_smoke () =
  let r = E.Fig2a.run ~duration:4.0 () in
  checkb "failover happened" true (r.E.Fig2a.failover_at <> None);
  checkb "master carried data" true (List.length r.E.Fig2a.master.E.Fig2a.points > 10);
  checkb "backup carried data" true (List.length r.E.Fig2a.backup.E.Fig2a.points > 10);
  (* failover strictly after the loss starts at 1 s *)
  match r.E.Fig2a.failover_at with
  | Some t -> checkb "after loss onset" true (t > 1.0 && t < 4.0)
  | None -> ()

let test_fig2b_smoke () =
  let r =
    E.Fig2b.run ~seeds:[ 1000 ] ~blocks:10 ~loss:0.20 ~variant:E.Fig2b.Smart_stream ()
  in
  checkb "most blocks complete" true (r.E.Fig2b.blocks_completed >= 8)

let test_fig2c_smoke () =
  let r =
    E.Fig2c.run ~seeds:[ 1000 ] ~file_bytes:5_000_000 ~variant:E.Fig2c.Ndiffports ()
  in
  checki "one completion" 1 (List.length r.E.Fig2c.completion_times);
  match r.E.Fig2c.paths_used_final with
  | [ n ] -> checkb "at least one path" true (n >= 1 && n <= 4)
  | _ -> Alcotest.fail "one run expected"

let test_fig3_smoke () =
  let k = E.Fig3.run ~requests:30 ~variant:E.Fig3.Kernel () in
  let u = E.Fig3.run ~requests:30 ~variant:E.Fig3.Userspace () in
  checkb "kernel delays measured" true (List.length k.E.Fig3.delays >= 25);
  checkb "userspace delays measured" true (List.length u.E.Fig3.delays >= 25);
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  checkb "userspace slower than kernel" true (mean u.E.Fig3.delays > mean k.E.Fig3.delays)

let test_backoff_smoke () =
  (* short horizon, total loss, fewer allowed backoffs: dies quickly *)
  let r = E.Backoff.run ~loss:1.0 ~max_backoffs:4 ~horizon:60.0 () in
  (match r.E.Backoff.subflow_died_at with
  | Some t -> checkb "died after backoffs" true (t > 1.0)
  | None -> Alcotest.fail "subflow should have died");
  checkb "several rtos" true (r.E.Backoff.rto_expirations >= 4);
  checkb "failover delivered data" true (r.E.Backoff.bytes_after_failover > 0)

let test_fullmesh_recovery_smoke () =
  let r = E.Fullmesh_recovery.run () in
  checki "mesh alive at the end" 2 r.E.Fullmesh_recovery.final_subflows;
  checkb "keepalives flowed" true (r.E.Fullmesh_recovery.messages_sent >= 4);
  checkb "controller recovered the RST" true (r.E.Fullmesh_recovery.reconnects >= 1)

let () =
  Alcotest.run "apps"
    [
      ( "workloads",
        [
          Alcotest.test_case "bulk" `Quick test_bulk_transfer;
          Alcotest.test_case "stream" `Quick test_stream_schedule_and_delays;
          Alcotest.test_case "http" `Quick test_http_request_response;
          Alcotest.test_case "keepalive" `Quick test_keepalive_cadence;
        ] );
      ( "experiments smoke",
        [
          Alcotest.test_case "fig2a" `Quick test_fig2a_smoke;
          Alcotest.test_case "fig2b" `Quick test_fig2b_smoke;
          Alcotest.test_case "fig2c" `Quick test_fig2c_smoke;
          Alcotest.test_case "fig3" `Quick test_fig3_smoke;
          Alcotest.test_case "backoff" `Quick test_backoff_smoke;
          Alcotest.test_case "fullmesh recovery" `Slow test_fullmesh_recovery_smoke;
        ] );
    ]
