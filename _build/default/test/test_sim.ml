(* Tests for the discrete-event engine, heap, time and RNG. *)

open Smapp_sim

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* --- Time -------------------------------------------------------------------- *)

let test_time_units () =
  checki "ms" 5_000_000 (Time.span_to_ns (Time.span_ms 5));
  checki "us" 5_000 (Time.span_to_ns (Time.span_us 5));
  checki "s" 5_000_000_000 (Time.span_to_ns (Time.span_s 5));
  checki "of_float" 1_500_000_000 (Time.span_to_ns (Time.span_of_float_s 1.5))

let test_time_arith () =
  let t = Time.add Time.zero (Time.span_ms 100) in
  checki "add" 100_000_000 (Time.to_ns t);
  checki "diff" 100_000_000 (Time.span_to_ns (Time.diff t Time.zero));
  checkb "compare" true Time.(t > Time.zero)

(* --- Heap -------------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.add h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 9; 5; 4; 3; 1; 1; 0 ] !out

let heap_props =
  [
    QCheck.Test.make ~name:"heap pops sorted" ~count:200
      QCheck.(list int)
      (fun xs ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.add h) xs;
        let rec drain acc =
          match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
        in
        drain [] = List.sort Int.compare xs);
    QCheck.Test.make ~name:"heap length" ~count:200
      QCheck.(list int)
      (fun xs ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.add h) xs;
        Heap.length h = List.length xs);
  ]

(* --- Rng --------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.of_int 1234 and b = Rng.of_int 1234 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.of_int 99 in
  let child = Rng.split parent in
  let c1 = Rng.int64 child and p1 = Rng.int64 parent in
  checkb "differ" true (not (Int64.equal c1 p1))

let test_rng_bounds () =
  let rng = Rng.of_int 5 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    checkb "in bounds" true (x >= 0 && x < 17)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.of_int 6 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  checkb "about 30%" true (rate > 0.29 && rate < 0.31)

let test_rng_float_range () =
  let rng = Rng.of_int 7 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    checkb "in range" true (x >= 0.0 && x < 2.5)
  done

(* --- Engine ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.after e (Time.span_ms 30) (note "c"));
  ignore (Engine.after e (Time.span_ms 10) (note "a"));
  ignore (Engine.after e (Time.span_ms 20) (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.after e (Time.span_ms 10) (note "first"));
  ignore (Engine.after e (Time.span_ms 10) (note "second"));
  Engine.run e;
  Alcotest.(check (list string)) "fifo ties" [ "first"; "second" ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.after e (Time.span_ms 10) (fun () -> fired := true) in
  Alcotest.(check bool) "active" true (Engine.timer_active timer);
  Engine.cancel timer;
  Alcotest.(check bool) "inactive" false (Engine.timer_active timer);
  Engine.run e;
  Alcotest.(check bool) "never fired" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.after e (Time.span_ms 10) (fun () -> incr count));
  ignore (Engine.after e (Time.span_ms 50) (fun () -> incr count));
  Engine.run ~until:(Time.add Time.zero (Time.span_ms 20)) e;
  checki "only first fired" 1 !count;
  checki "clock at limit" 20_000_000 (Time.to_ns (Engine.now e));
  Engine.run e;
  checki "rest fired on resume" 2 !count

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  let _timer =
    Engine.every e (Time.span_ms 10) (fun () ->
        incr count;
        if !count >= 5 then `Stop else `Continue)
  in
  Engine.run e;
  checki "five ticks" 5 !count;
  checki "stopped at 50ms" 50_000_000 (Time.to_ns (Engine.now e))

let test_engine_every_cancel () =
  let e = Engine.create () in
  let count = ref 0 in
  let timer = Engine.every e (Time.span_ms 10) (fun () -> incr count; `Continue) in
  ignore
    (Engine.after e (Time.span_ms 35) (fun () -> Engine.cancel timer));
  Engine.run e;
  checki "three ticks then cancelled" 3 !count

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.after e (Time.span_ms 10) (fun () ->
         log := "outer" :: !log;
         ignore (Engine.after e (Time.span_ms 5) (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  checki "clock" 15_000_000 (Time.to_ns (Engine.now e))

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore
    (Engine.after e (Time.span_ms 10) (fun () ->
         Alcotest.check_raises "past scheduling rejected"
           (Invalid_argument "Engine.at: 0.000000s is before now (0.010000s)") (fun () ->
             ignore (Engine.at e Time.zero (fun () -> ())))));
  Engine.run e

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
        ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering ]
        @ List.map QCheck_alcotest.to_alcotest heap_props );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "every cancel" `Quick test_engine_every_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
          Alcotest.test_case "past raises" `Quick test_engine_past_raises;
        ] );
    ]
