(* Tests for summaries, CDFs, time series and tables. *)

open Smapp_stats

let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_summary_basic () =
  let s = Summary.of_samples [ 1.0; 2.0; 3.0; 4.0 ] in
  checkf "mean" 2.5 s.Summary.mean;
  checkf "min" 1.0 s.Summary.min;
  checkf "max" 4.0 s.Summary.max;
  checki "count" 4 s.Summary.count;
  (* sample stddev of 1..4 = sqrt(5/3) *)
  checkf "stddev" (sqrt (5.0 /. 3.0)) s.Summary.stddev

let test_summary_singleton () =
  let s = Summary.of_samples [ 42.0 ] in
  checkf "mean" 42.0 s.Summary.mean;
  checkf "stddev 0" 0.0 s.Summary.stddev

let test_summary_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_samples: empty") (fun () ->
      ignore (Summary.of_samples []))

let test_percentile () =
  let samples () = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checkf "p0" 1.0 (Summary.percentile (samples ()) 0.0);
  checkf "p50" 3.0 (Summary.percentile (samples ()) 50.0);
  checkf "p100" 5.0 (Summary.percentile (samples ()) 100.0);
  checkf "p25 interpolated" 2.0 (Summary.percentile (samples ()) 25.0);
  checkf "p10 interpolated" 1.4 (Summary.percentile (samples ()) 10.0)

let test_cdf_eval () =
  let cdf = Cdf.of_samples [ 1.0; 2.0; 3.0; 4.0 ] in
  checkf "below" 0.0 (Cdf.eval cdf 0.5);
  checkf "at 2" 0.5 (Cdf.eval cdf 2.0);
  checkf "mid" 0.5 (Cdf.eval cdf 2.5);
  checkf "above" 1.0 (Cdf.eval cdf 10.0)

let test_cdf_quantile () =
  let cdf = Cdf.of_samples [ 10.0; 20.0; 30.0; 40.0 ] in
  checkf "q0.25" 10.0 (Cdf.quantile cdf 0.25);
  checkf "q0.5" 20.0 (Cdf.quantile cdf 0.5);
  checkf "q1" 40.0 (Cdf.quantile cdf 1.0)

let cdf_props =
  let arb = QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-100.) 100.)) in
  [
    QCheck.Test.make ~name:"cdf is monotone" ~count:200 arb (fun xs ->
        QCheck.assume (xs <> []);
        let cdf = Cdf.of_samples xs in
        let points = Cdf.points cdf in
        let rec mono = function
          | (x1, f1) :: ((x2, f2) :: _ as rest) ->
              x1 <= x2 && f1 <= f2 && mono rest
          | _ -> true
        in
        mono points);
    QCheck.Test.make ~name:"cdf ends at 1" ~count:200 arb (fun xs ->
        QCheck.assume (xs <> []);
        let cdf = Cdf.of_samples xs in
        abs_float (Cdf.eval cdf (Cdf.max_value cdf) -. 1.0) < 1e-9);
    QCheck.Test.make ~name:"quantile inverts eval" ~count:200
      (QCheck.pair arb (QCheck.float_range 0.01 1.0))
      (fun (xs, q) ->
        QCheck.assume (xs <> []);
        let cdf = Cdf.of_samples xs in
        let x = Cdf.quantile cdf q in
        Cdf.eval cdf x >= q -. 1e-9);
  ]

let test_timeseries () =
  let ts = Timeseries.create ~label:"trace" () in
  Timeseries.add ts 0.0 1.0;
  Timeseries.add ts 1.0 2.0;
  Timeseries.add ts 2.0 4.0;
  checki "length" 3 (Timeseries.length ts);
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "last" (Some (2.0, 4.0)) (Timeseries.last ts);
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "span" (Some (0.0, 2.0)) (Timeseries.span ts);
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "to_list in order"
    [ (0.0, 1.0); (1.0, 2.0); (2.0, 4.0) ]
    (Timeseries.to_list ts)

let test_table () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "22" ];
  let s = Table.to_string t in
  checkb "header present" true (String.length s > 0);
  checkb "contains alpha" true
    (String.length s >= 5
    &&
    let re_found = ref false in
    String.iteri
      (fun i _ -> if i + 5 <= String.length s && String.sub s i 5 = "alpha" then re_found := true)
      s;
    !re_found)

let test_table_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_ascii_plot_smoke () =
  let cdf = Cdf.of_samples [ 1.0; 2.0; 3.0 ] in
  let s = Ascii_plot.cdfs [ ("test", cdf) ] in
  checkb "renders" true (String.length s > 100);
  let sc = Ascii_plot.scatter [ ("pts", [ (0.0, 0.0); (1.0, 1.0) ]) ] in
  checkb "scatter renders" true (String.length sc > 100)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "singleton" `Quick test_summary_singleton;
          Alcotest.test_case "empty raises" `Quick test_summary_empty_raises;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "quantile" `Quick test_cdf_quantile;
        ]
        @ List.map QCheck_alcotest.to_alcotest cdf_props );
      ( "timeseries", [ Alcotest.test_case "basic" `Quick test_timeseries ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table;
          Alcotest.test_case "arity" `Quick test_table_arity;
        ] );
      ("ascii_plot", [ Alcotest.test_case "smoke" `Quick test_ascii_plot_smoke ]);
    ]
