(* The smapp command-line tool: run any of the paper's experiments and
   print its table/figure as text. *)

open Cmdliner
module E = Smapp_experiments
module Stats = Smapp_stats
module Obs = Smapp_obs

(* Run [f] with metrics + tracing on (cleared first), restoring the flags
   afterwards. The recorded data stays available for export. *)
let with_obs f =
  let saved_m = Atomic.get Obs.Metrics.enabled
  and saved_t = Atomic.get Obs.Trace.enabled in
  Atomic.set Obs.Metrics.enabled true;
  Atomic.set Obs.Trace.enabled true;
  Obs.Metrics.clear ();
  Obs.Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Atomic.set Obs.Metrics.enabled saved_m;
      Atomic.set Obs.Trace.enabled saved_t)
    f

(* -j N / --jobs N: run the experiment's independent sweeps across N domains
   (default 1: plain sequential, no pool). Results are identical either way —
   the pool merges in submission order and each job runs inside an isolated
   observability scope. That isolation is also why tracing forces a
   sequential run: a pooled job's trace events live in its private scope and
   would never reach the exported file. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Run the experiment's independent sweeps across $(docv) domains.")

let with_pool ?(tracing = false) jobs f =
  if jobs < 1 then invalid_arg "--jobs expects a positive domain count";
  if tracing && jobs > 1 then begin
    Printf.printf
      "note: --trace forces a sequential run (pooled jobs trace into \
       per-domain scopes, away from the exported buffer)\n";
    f None
  end
  else if jobs = 1 then f None
  else begin
    let pool = Smapp_par.Pool.create ~domains:jobs in
    Fun.protect
      ~finally:(fun () -> Smapp_par.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

let write_trace out =
  Obs.Trace.export_chrome_file out;
  Printf.printf "wrote %d trace events (%d evicted) to %s — load in chrome://tracing or ui.perfetto.dev\n"
    (List.length (Obs.Trace.events ()))
    (Obs.Trace.dropped ()) out

let print_cdf_table name cdfs =
  Printf.printf "\n%s\n" name;
  let table = Stats.Table.create ("quantile" :: List.map fst cdfs) in
  List.iter
    (fun q ->
      Stats.Table.add_row table
        (Printf.sprintf "p%.0f" (q *. 100.0)
        :: List.map (fun (_, cdf) -> Printf.sprintf "%.3f" (Stats.Cdf.quantile cdf q)) cdfs))
    [ 0.10; 0.25; 0.50; 0.75; 0.90; 0.99 ];
  print_string (Stats.Table.to_string table);
  print_newline ();
  print_string (Stats.Ascii_plot.cdfs ~x_label:"seconds" cdfs)

(* --- fig2a ------------------------------------------------------------------ *)

let run_fig2a seed =
  let r = E.Fig2a.run ~seed () in
  Printf.printf "Fig 2a: smart backup — seq numbers vs time\n";
  (match r.E.Fig2a.failover_at with
  | Some t -> Printf.printf "controller switched to backup at %.3f s\n" t
  | None -> Printf.printf "no failover happened\n");
  Printf.printf "delivered %d bytes in %.1f s\n" r.E.Fig2a.bytes_delivered r.E.Fig2a.duration;
  let series =
    [
      (r.E.Fig2a.master.E.Fig2a.label, r.E.Fig2a.master.E.Fig2a.points);
      (r.E.Fig2a.backup.E.Fig2a.label, r.E.Fig2a.backup.E.Fig2a.points);
    ]
  in
  print_string
    (Stats.Ascii_plot.scatter ~x_label:"relative time (s)"
       ~y_label:"relative seq number (10^5 bytes)" series)

let fig2a_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v (Cmd.info "fig2a" ~doc:"Smart backup trace (Fig 2a)")
    Term.(const run_fig2a $ seed)

(* --- fig2b ------------------------------------------------------------------ *)

let run_fig2b runs blocks jobs =
  with_pool jobs @@ fun pool ->
  let seeds = E.Harness.seeds runs in
  Printf.printf "Fig 2b: CDF of 64KB block completion time (%d runs x %d blocks)\n" runs
    blocks;
  let losses = [ 0.10; 0.20; 0.30; 0.40 ] in
  let curve variant loss =
    let r = E.Fig2b.run ?pool ~seeds ~blocks ~loss ~variant () in
    ( Printf.sprintf "%s %d%%" (E.Fig2b.variant_name variant) (int_of_float (loss *. 100.)),
      r.E.Fig2b.delays )
  in
  let fullmesh = List.map (curve E.Fig2b.Default_fullmesh) losses in
  let smart = curve E.Fig2b.Smart_stream 0.30 in
  let cdfs =
    List.filter_map
      (fun (name, delays) ->
        if delays = [] then None else Some (name, Stats.Cdf.of_samples delays))
      (smart :: fullmesh)
  in
  print_cdf_table "block completion time CDFs (s)" cdfs

let fig2b_cmd =
  let runs = Arg.(value & opt int 5 & info [ "runs" ] ~doc:"Seeds per curve.") in
  let blocks = Arg.(value & opt int 30 & info [ "blocks" ] ~doc:"Blocks per run.") in
  Cmd.v (Cmd.info "fig2b" ~doc:"Smart streaming CDFs (Fig 2b)")
    Term.(const run_fig2b $ runs $ blocks $ jobs_arg)

(* --- fig2c ------------------------------------------------------------------ *)

let run_fig2c runs mb jobs =
  with_pool jobs @@ fun pool ->
  let file_bytes = mb * 1_000_000 in
  let seeds = E.Harness.seeds runs in
  Printf.printf "Fig 2c: CDF of %d MB completion times over 4 ECMP paths, 5 subflows (%d runs)\n"
    mb runs;
  let show variant =
    let r = E.Fig2c.run ?pool ~seeds ~file_bytes ~variant () in
    Printf.printf "%s: paths used per run: %s\n"
      (E.Fig2c.variant_name variant)
      (String.concat "," (List.map string_of_int r.E.Fig2c.paths_used_final));
    ( E.Fig2c.variant_name variant,
      r.E.Fig2c.completion_times )
  in
  let nd = show E.Fig2c.Ndiffports in
  let rf = show E.Fig2c.Refresh in
  Printf.printf "ideal (4 paths): %.1f s\n"
    (E.Fig2c.ideal_completion ~file_bytes ~paths:4 ~rate_bps:8e6);
  let cdfs =
    List.filter_map
      (fun (name, times) ->
        if times = [] then None else Some (name, Stats.Cdf.of_samples times))
      [ rf; nd ]
  in
  print_cdf_table "completion time CDFs (s)" cdfs

let fig2c_cmd =
  let runs = Arg.(value & opt int 20 & info [ "runs" ] ~doc:"Runs per variant.") in
  let mb = Arg.(value & opt int 100 & info [ "mb" ] ~doc:"File size in MB.") in
  Cmd.v (Cmd.info "fig2c" ~doc:"ECMP refresh controller vs ndiffports (Fig 2c)")
    Term.(const run_fig2c $ runs $ mb $ jobs_arg)

(* --- fig3 ------------------------------------------------------------------- *)

let run_fig3 requests stress jobs =
  with_pool jobs @@ fun pool ->
  Printf.printf "Fig 3: CAPA-SYN to JOIN-SYN delay, %d HTTP GETs of 512 KB\n" requests;
  (* the kernel / userspace / stressed runs are independent simulations:
     sweep them together so a pool can spread them over domains *)
  let specs =
    [ (E.Fig3.Kernel, 1.0, requests); (E.Fig3.Userspace, 1.0, requests) ]
    @ (if stress > 1.0 then [ (E.Fig3.Userspace, stress, requests) ] else [])
  in
  let show r =
    let delays_ms = List.map (fun d -> d *. 1000.0) r.E.Fig3.delays in
    let label =
      if r.E.Fig3.stress = 1.0 then E.Fig3.variant_name r.E.Fig3.variant
      else
        Printf.sprintf "%s (stress x%.1f)"
          (E.Fig3.variant_name r.E.Fig3.variant)
          r.E.Fig3.stress
    in
    (match delays_ms with
    | [] -> Printf.printf "%s: no joins observed!\n" label
    | _ ->
        let s = Stats.Summary.of_samples delays_ms in
        Printf.printf "%s: %d joins, mean %.3f ms, sd %.4f ms\n" label
          s.Stats.Summary.count s.Stats.Summary.mean s.Stats.Summary.stddev);
    (label, delays_ms)
  in
  let kernel, user, stressed =
    match List.map show (E.Fig3.sweep ?pool specs) with
    | kernel :: user :: stressed -> (kernel, user, stressed)
    | _ -> assert false (* sweep preserves length; specs has >= 2 entries *)
  in
  (match (kernel, user) with
  | (_, _ :: _), (_, _ :: _) ->
      let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      Printf.printf "userspace adds %.1f us on average (paper: ~23 us)\n"
        ((mean (snd user) -. mean (snd kernel)) *. 1000.0)
  | _ -> ());
  let cdfs =
    List.filter_map
      (fun (name, delays) ->
        if delays = [] then None else Some (name, Stats.Cdf.of_samples delays))
      ([ kernel; user ] @ stressed)
  in
  Printf.printf "\n";
  List.iter
    (fun q ->
      Printf.printf "p%-3.0f %s\n" (q *. 100.)
        (String.concat "  "
           (List.map
              (fun (name, cdf) ->
                Printf.sprintf "%s=%.4fms" name (Stats.Cdf.quantile cdf q))
              cdfs)))
    [ 0.25; 0.5; 0.75; 0.95 ];
  print_string
    (Stats.Ascii_plot.cdfs ~x_label:"delay between CAPA and JOIN (ms)" cdfs)

let fig3_cmd =
  let requests = Arg.(value & opt int 1000 & info [ "requests" ] ~doc:"GET count.") in
  let stress =
    Arg.(value & opt float 1.6 & info [ "stress" ] ~doc:"CPU stress multiplier.")
  in
  Cmd.v (Cmd.info "fig3" ~doc:"Kernel vs userspace PM latency (Fig 3)")
    Term.(const run_fig3 $ requests $ stress $ jobs_arg)

(* --- backoff ----------------------------------------------------------------- *)

let run_backoff loss =
  Printf.printf
    "Backoff (4.2 text): binary backup semantics under %.0f%% loss from t=1s\n"
    (loss *. 100.0);
  let r = E.Backoff.run ~loss () in
  (match r.E.Backoff.subflow_died_at with
  | Some t ->
      Printf.printf
        "primary subflow killed after %.1f s (~%.1f min; paper observes ~12 min)\n" t
        (t /. 60.0)
  | None -> Printf.printf "primary subflow still alive at horizon\n");
  Printf.printf "rto expirations on primary: %d, max rto %.1f s\n"
    r.E.Backoff.rto_expirations r.E.Backoff.max_rto_seen;
  Printf.printf "bytes delivered before/after failover: %d / %d\n"
    r.E.Backoff.bytes_before_failover r.E.Backoff.bytes_after_failover

let backoff_cmd =
  let loss = Arg.(value & opt float 0.30 & info [ "loss" ] ~doc:"Loss ratio.") in
  Cmd.v (Cmd.info "backoff" ~doc:"RFC-style backup failover latency (4.2 text)")
    Term.(const run_backoff $ loss)

(* --- fullmesh ---------------------------------------------------------------- *)

let run_fullmesh seed =
  Printf.printf "4.1: userspace fullmesh controller on a long-lived connection\n";
  let r = E.Fullmesh_recovery.run ~seed () in
  List.iter
    (fun c ->
      Printf.printf "%7.1fs  %-26s subflows=%d\n" c.E.Fullmesh_recovery.at
        c.E.Fullmesh_recovery.label c.E.Fullmesh_recovery.subflows_alive)
    r.E.Fullmesh_recovery.checkpoints;
  Printf.printf "controller created %d subflows, scheduled %d reconnects\n"
    r.E.Fullmesh_recovery.subflows_created_by_controller r.E.Fullmesh_recovery.reconnects;
  Printf.printf "keepalives sent: %d; final subflows: %d\n"
    r.E.Fullmesh_recovery.messages_sent r.E.Fullmesh_recovery.final_subflows

let fullmesh_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v (Cmd.info "fullmesh" ~doc:"Fullmesh controller failure recovery (4.1)")
    Term.(const run_fullmesh $ seed)

(* --- chaos ------------------------------------------------------------------- *)

let pp_convergence r =
  Printf.printf
    "%-8s drop=%4.0f%% seed=%-3d  converged=%-8s dup_subs=%d  kernel/view subs=%d/%d  \
     retries=%d resyncs=%d gaps=%d  ch drops=%d dups=%d enobufs=%d  key replays=%d\n"
    r.E.Chaos.controller (r.E.Chaos.drop *. 100.0) r.E.Chaos.seed
    (match r.E.Chaos.converged_after_s with
    | Some s -> Printf.sprintf "%.3fs" s
    | None -> "NEVER")
    r.E.Chaos.duplicate_subflows r.E.Chaos.kernel_subflows r.E.Chaos.view_subflows
    r.E.Chaos.retries r.E.Chaos.resyncs r.E.Chaos.gaps_detected r.E.Chaos.dropped
    r.E.Chaos.duplicated r.E.Chaos.overflowed r.E.Chaos.duplicate_commands

let pp_dataplane r =
  Printf.printf
    "%-8s seed=%-4d  bytes=%d/%d %-8s  handovers=%d failovers=%d requests=%d \
     reconnects=%d stale=%d  max_stall=%.2fs (bound %.1fs)  link_drops=%d  \
     goodput=%.2f Mbit/s  -> %s\n"
    r.E.Chaos.dp_scenario r.E.Chaos.dp_seed r.E.Chaos.dp_bytes_received
    r.E.Chaos.dp_bytes_sent
    (if r.E.Chaos.dp_byte_exact then "exact" else "MISMATCH")
    r.E.Chaos.dp_handovers r.E.Chaos.dp_failovers r.E.Chaos.dp_subflow_requests
    r.E.Chaos.dp_reconnects r.E.Chaos.dp_stale_suppressed r.E.Chaos.dp_max_stall_s
    r.E.Chaos.dp_stall_bound_s r.E.Chaos.dp_link_drops
    (r.E.Chaos.dp_goodput_bps /. 1e6)
    (if E.Chaos.dataplane_invariants_ok r then "ok" else "INVARIANT VIOLATION")

let run_chaos scenario seed drop grid shards jobs trace =
  with_pool ~tracing:(trace <> None) jobs @@ fun pool ->
  if shards < 1 then invalid_arg "--shards expects a positive count";
  let dataplane scenarios =
    Printf.printf
      "Data-plane chaos: time-varying links, handover churn, degradation audit\n";
    if shards > 1 then
      Printf.printf
        "note: --shards %d applies to regionfail; the cable-modulation \
         scenarios are single-engine by construction\n"
        shards;
    let results =
      if grid then E.Chaos.run_dataplane_grid ?pool ~scenarios ~shards ()
      else
        List.map
          (fun scenario -> E.Chaos.run_dataplane ~scenario ~seed ~shards ())
          scenarios
    in
    List.iter pp_dataplane results;
    if not (List.for_all E.Chaos.dataplane_invariants_ok results) then begin
      Printf.printf "graceful-degradation invariants VIOLATED\n";
      exit 1
    end
  in
  let body () =
    match scenario with
    | `Mobile -> dataplane [ `Mobile ]
    | `Degrade -> dataplane [ `Degrade ]
    | `Dualfade -> dataplane [ `Dualfade ]
    | `Regionfail -> dataplane [ `Regionfail ]
    | `Dataplane -> dataplane [ `Mobile; `Degrade; `Dualfade; `Regionfail ]
    | `Control ->
        Printf.printf
          "Chaos: fullmesh controller over a lossy Netlink channel + daemon restart\n";
        if grid then List.iter pp_convergence (E.Chaos.run_grid ?pool ())
        else pp_convergence (E.Chaos.run_convergence ~seed ~drop ());
        Printf.printf "\nWatchdog: daemon lost for good at t=5s\n";
        let w = E.Chaos.run_watchdog ~seed () in
        Printf.printf
          "fallback_active=%b fallbacks=%d handbacks=%d kernel_subflows=%d\n"
          w.E.Chaos.w_fallback_active w.E.Chaos.w_fallbacks w.E.Chaos.w_handbacks
          w.E.Chaos.w_kernel_subflows;
        Printf.printf "bytes acked at loss / at end: %d / %d (%s)\n"
          w.E.Chaos.w_bytes_at_loss w.E.Chaos.w_bytes_final
          (if w.E.Chaos.w_bytes_final > w.E.Chaos.w_bytes_at_loss then
             "still transferring"
           else "STALLED")
  in
  match trace with
  | None -> body ()
  | Some out ->
      with_obs (fun () ->
          body ();
          write_trace out)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Record a Chrome trace of the run into $(docv).")

let chaos_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let drop =
    Arg.(value & opt float 0.05 & info [ "drop" ] ~doc:"Netlink message drop ratio.")
  in
  let grid =
    Arg.(
      value & flag
      & info [ "grid" ] ~doc:"Sweep the scenario's full (parameter x seed) grid.")
  in
  let scenario =
    Arg.(
      value
      & opt
          (enum
             [
               ("control", `Control);
               ("mobile", `Mobile);
               ("degrade", `Degrade);
               ("dualfade", `Dualfade);
               ("regionfail", `Regionfail);
               ("dataplane", `Dataplane);
             ])
          `Control
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "One of control (lossy Netlink + daemon restart), mobile (WiFi/LTE \
             handover roaming), degrade (primary fades then dies), dualfade \
             (correlated burst loss on both paths), regionfail (half the \
             workload clients lose a NIC; shardable), dataplane (all four \
             data-plane scenarios). Data-plane runs exit non-zero if a \
             graceful-degradation invariant is violated.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run shardable data-plane scenarios across $(docv) engines \
             (conservative windows); results are byte-identical to --shards 1.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault injection: control-plane convergence and data-plane degradation")
    Term.(
      const run_chaos $ scenario $ seed $ drop $ grid $ shards $ jobs_arg
      $ trace_arg)

(* --- workload ----------------------------------------------------------------- *)

let parse_flow_dist s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "fixed"; n ] -> Ok (Smapp_workload.Workload.Fixed (int_of_string n))
  | [ "exp"; mean ] ->
      Ok (Smapp_workload.Workload.Exponential { mean = int_of_string mean })
  | [ "pareto"; xmin; alpha; cap ] ->
      Ok
        (Smapp_workload.Workload.Pareto
           {
             xmin = int_of_string xmin;
             alpha = float_of_string alpha;
             cap = int_of_string cap;
           })
  | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad flow distribution %S (want fixed:BYTES, exp:MEAN or \
               pareto:XMIN:ALPHA:CAP)"
              s))

let flow_dist_conv =
  Arg.conv
    ( (fun s -> try parse_flow_dist s with Failure _ -> Error (`Msg ("bad number in " ^ s))),
      fun ppf d ->
        let open Smapp_workload.Workload in
        match d with
        | Fixed n -> Format.fprintf ppf "fixed:%d" n
        | Exponential { mean } -> Format.fprintf ppf "exp:%d" mean
        | Pareto { xmin; alpha; cap } -> Format.fprintf ppf "pareto:%d:%g:%d" xmin alpha cap )

let controller_conv =
  Arg.enum [ ("none", `None); ("fullmesh", `Fullmesh); ("backup", `Backup) ]

(* --minor-heap WORDS[k|m]: Gc.set at startup, before any engine exists.
   Sizing the minor heap to the datapath's working set trades minor-GC
   frequency against cache footprint; the bench perf section records a
   sweep point so the effect is tracked per host. Purely a performance
   knob: results are byte-identical at any setting (the determinism
   gates run the same digests regardless of GC schedule). *)
let parse_minor_heap s =
  let len = String.length s in
  let mult, digits =
    if len = 0 then (1, s)
    else
      match s.[len - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (len - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (len - 1))
      | _ -> (1, s)
  in
  match int_of_string_opt digits with
  | Some n when n > 0 -> Ok (n * mult)
  | Some _ | None ->
      Error
        (`Msg
           (Printf.sprintf "bad minor-heap size %S (want WORDS, e.g. 512k or 8m)" s))

let minor_heap_conv =
  Arg.conv (parse_minor_heap, fun ppf words -> Format.fprintf ppf "%d" words)

let minor_heap_arg =
  Arg.(
    value
    & opt (some minor_heap_conv) None
    & info [ "minor-heap" ] ~docv:"WORDS"
        ~doc:
          "Set the GC minor heap size in words (suffixes k/m) before the run. \
           Performance only — results are byte-identical at any setting.")

let apply_minor_heap = function
  | None -> ()
  | Some words -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = words }

let run_workload conns arrival_rate flow_dist controller clients servers paths shards
    seed runs minor_heap jobs trace =
  apply_minor_heap minor_heap;
  with_pool ~tracing:(trace <> None) jobs @@ fun pool ->
  let open Smapp_workload in
  if shards < 1 then invalid_arg "--shards expects a positive count";
  let shards =
    if shards > 1 && trace <> None then begin
      (* each shard traces into its private scope, invisible to the
         exported buffer — same reason --trace forces --jobs 1 *)
      Printf.printf "note: --trace forces --shards 1\n";
      1
    end
    else shards
  in
  let config =
    {
      Workload.default_config with
      Workload.conns;
      arrival_rate;
      flow_dist;
      controller;
      clients;
      servers;
      paths;
      seed;
      shards;
    }
  in
  if runs < 1 then invalid_arg "--runs expects a positive count";
  Printf.printf
    "workload: %d conns at %g/s, %d clients x %d servers x %d paths, seed %d%s%s\n"
    conns arrival_rate clients servers paths seed
    (if shards > 1 then Printf.sprintf ", %d shards" shards else "")
    (if runs > 1 then Printf.sprintf " (x%d runs)" runs else "");
  let seeds = List.init runs (fun i -> seed + i) in
  let run_all () =
    let rs =
      if runs = 1 then begin
        (* window lanes across domains: the in-scenario parallelism; with
           multiple runs the pool parallelises whole seeds instead *)
        let lanes_domains = min shards jobs in
        if shards > 1 && lanes_domains > 1 then begin
          let lanes = Smapp_par.Lanes.create ~domains:lanes_domains in
          Fun.protect
            ~finally:(fun () -> Smapp_par.Lanes.shutdown lanes)
            (fun () -> [ Workload.run ~lanes config ])
        end
        else [ Workload.run config ]
      end
      else Workload.run_many ?pool ~seeds config
    in
    (match trace with Some out -> write_trace out | None -> ());
    rs
  in
  let rs = match trace with None -> run_all () | Some _ -> with_obs run_all in
  List.iter2
    (fun run_seed r ->
      if runs > 1 then Printf.printf "\n[seed %d]\n" run_seed;
      Printf.printf "completed %d/%d (peak %d concurrent), %d bytes total\n"
        r.Workload.completed r.Workload.launched r.Workload.peak_concurrent
        r.Workload.bytes_total;
      Printf.printf "controller: %d subflows created, %d failovers\n"
        r.Workload.subflows_created r.Workload.failovers;
      Printf.printf "simulated %.2f s in %.2f s wall; %d events -> %.0f events/s\n"
        r.Workload.sim_duration_s r.Workload.wall_s r.Workload.engine_events
        r.Workload.events_per_sec;
      (* every deterministic field, bit-exactly: the byte-identity gate
         for sequential-vs-sharded runs compares this line *)
      Printf.printf "digest %s\n" (Workload.digest r))
    seeds rs;
  (match List.concat_map (fun r -> r.Workload.fcts) rs with
  | [] -> ()
  | samples ->
      print_cdf_table "flow completion times (s)"
        [ ("fct", Stats.Cdf.of_samples samples) ]);
  if List.exists (fun r -> r.Workload.completed < r.Workload.launched) rs then exit 1

let workload_cmd =
  let conns =
    Arg.(value & opt int 1000 & info [ "conns" ] ~doc:"Connections to launch.")
  in
  let arrival_rate =
    Arg.(
      value & opt float 500.0
      & info [ "arrival-rate" ] ~doc:"Mean Poisson arrivals per second.")
  in
  let flow_dist =
    Arg.(
      value
      & opt flow_dist_conv Smapp_workload.Workload.default_config.Smapp_workload.Workload.flow_dist
      & info [ "flow-dist" ]
          ~doc:"Flow size distribution: fixed:BYTES, exp:MEAN or pareto:XMIN:ALPHA:CAP.")
  in
  let controller =
    Arg.(
      value & opt controller_conv `Fullmesh
      & info [ "controller" ] ~doc:"Per-connection controller: none, fullmesh or backup.")
  in
  let clients = Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Client hosts.") in
  let servers = Arg.(value & opt int 4 & info [ "servers" ] ~doc:"Server hosts.") in
  let paths = Arg.(value & opt int 2 & info [ "paths" ] ~doc:"Disjoint paths.") in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the scenario across $(docv) engines under the \
             conservative-window protocol; results are byte-identical to \
             --shards 1. With --runs 1, windows execute across min(N, \
             --jobs) domains.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let runs =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~doc:"Repeat with consecutive seeds; FCTs are pooled.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Scale-out traffic: many connections under per-connection controllers")
    Term.(
      const run_workload $ conns $ arrival_rate $ flow_dist $ controller $ clients
      $ servers $ paths $ shards $ seed $ runs $ minor_heap_arg $ jobs_arg $ trace_arg)

(* --- check: the correctness tooling ----------------------------------------- *)

let run_check quick permutations =
  let module Check = Smapp_check in
  let failures = ref 0 in
  let part name ok detail =
    Printf.printf "%s %-28s %s\n" (if ok then "ok  " else "FAIL") name detail;
    if not ok then incr failures
  in
  (* 1. the transition tables are structurally sound *)
  (match Check.Fsm.self_check () with
  | Ok () -> part "fsm self-check" true "tables complete, terminal, reachable"
  | Error msg -> part "fsm self-check" false msg);
  (* 2. the source tree is lint-clean (when run from the repo root) *)
  (if Sys.file_exists "lib" && Sys.is_directory "lib" then
     let r = Check.Lint.run ~dir:"lib" in
     List.iter
       (fun f -> Format.printf "%a@." Check.Lint.pp_finding f)
       r.Check.Lint.r_findings;
     part "lint lib/"
       (r.Check.Lint.r_findings = [])
       (Printf.sprintf "%d files, %d findings, %d suppressed"
          r.Check.Lint.r_files
          (List.length r.Check.Lint.r_findings)
          r.Check.Lint.r_suppressed)
   else Printf.printf "skip lint (no lib/ here)\n");
  (* 3. tie-order exploration of the conformance-checked scenarios *)
  let permutations = if quick then min permutations 120 else permutations in
  let explore name scenario =
    match Check.Explore.run ~permutations scenario with
    | outcome ->
        part
          (Printf.sprintf "explore %s" name)
          (Check.Explore.consistent outcome)
          (Format.asprintf "%a" Check.Explore.pp_outcome outcome)
    | exception Check.Fsm.Conformance msg ->
        part (Printf.sprintf "explore %s" name) false ("conformance: " ^ msg)
  in
  explore "two-subflow-transfer" Check.Scenarios.two_subflow_transfer;
  explore "close-wait-drain" Check.Scenarios.close_wait_deadlock;
  explore "post-fin-subflow" Check.Scenarios.post_fin_subflow;
  if !failures > 0 then begin
    Printf.printf "smapp check: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "smapp check: all passed\n"

let check_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Cap exploration at 120 permutations per scenario (CI).")
  in
  let permutations =
    Arg.(
      value & opt int 300
      & info [ "permutations" ]
          ~doc:"Tie-order permutations to explore per scenario.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Correctness tooling: FSM table self-check, source lint, and \
          tie-order race exploration")
    Term.(const run_check $ quick $ permutations)

(* --- analyze: typed domain-safety & determinism pass -------------------------- *)

let run_analyze root allowlist_file baseline_file json_file =
  let module A = Smapp_check.Analysis in
  let root =
    match root with
    | Some r -> r
    | None -> (
        match A.default_root () with
        | Some r -> r
        | None ->
            prerr_endline
              "smapp analyze: no .cmt artifacts found (run `dune build` first)";
            exit 2)
  in
  let allowlist_file =
    match allowlist_file with
    | Some f -> Some f
    | None ->
        if Sys.file_exists "analysis-allowlist.txt" then
          Some "analysis-allowlist.txt"
        else None
  in
  let allowlist =
    match allowlist_file with
    | None -> A.empty_allowlist
    | Some f -> (
        match A.load_allowlist f with
        | Ok a -> a
        | Error e ->
            prerr_endline ("smapp analyze: bad allowlist: " ^ e);
            exit 2)
  in
  let report = A.run ~allowlist ~root () in
  let gate =
    match baseline_file with
    | None -> report.A.r_findings
    | Some f -> A.regressions ~baseline:(A.load_baseline f) report
  in
  List.iter (fun f -> Format.printf "%a@." A.pp_finding f) report.A.r_findings;
  List.iter
    (fun k -> Format.printf "smapp analyze: stale allowlist entry: %s@." k)
    report.A.r_stale_allow;
  (match json_file with
  | None -> ()
  | Some path ->
      let open Smapp_stats.Json in
      let finding_json f =
        Obj
          [
            ("rule", String (A.rule_id f.A.a_rule));
            ("file", String f.A.a_file);
            ("line", Int f.A.a_line);
            ("col", Int f.A.a_col);
            ("module", String f.A.a_module);
            ("symbol", String f.A.a_symbol);
            ("key", String (A.key f));
            ("message", String f.A.a_message);
          ]
      in
      to_file path
        (Obj
           [
             ("units", Int report.A.r_units);
             ("findings", List (List.map finding_json report.A.r_findings));
             ( "allowlisted",
               List
                 (List.map
                    (fun (f, just) ->
                      Obj
                        [
                          ("key", String (A.key f));
                          ("justification", String just);
                        ])
                    report.A.r_allowlisted) );
             ( "stale_allowlist",
               List (List.map (fun k -> String k) report.A.r_stale_allow) );
             ("new_vs_baseline", List (List.map finding_json gate));
           ]));
  Printf.printf
    "analysis: %d units, %d findings, %d allowlisted, %d stale allowlist \
     entries%s\n"
    report.A.r_units
    (List.length report.A.r_findings)
    (List.length report.A.r_allowlisted)
    (List.length report.A.r_stale_allow)
    (match baseline_file with
    | None -> ""
    | Some _ -> Printf.sprintf ", %d new vs baseline" (List.length gate));
  if gate <> [] then exit 1

let analyze_cmd =
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Directory scanned (recursively) for .cmt artifacts. Defaults to \
             _build/default/lib, then lib.")
  in
  let allowlist =
    Arg.(
      value
      & opt (some string) None
      & info [ "allowlist" ] ~docv:"FILE"
          ~doc:
            "Reviewed suppressions ('<rule-id> <Module.symbol> -- \
             justification' per line). Defaults to analysis-allowlist.txt \
             when present.")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Accepted finding keys, one per line; with this, only findings \
             absent from the file fail the run.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full report as JSON.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Typed domain-safety and determinism analysis over the compiled \
          tree: mutable globals, nondeterminism sources, and hot-path \
          allocations, gated by an allowlist with mandatory justifications")
    Term.(const run_analyze $ root $ allowlist $ baseline $ json)

(* --- trace / metrics: the observability front door --------------------------- *)

let exp_conv =
  Arg.enum
    [ ("fig3", `Fig3); ("chaos", `Chaos); ("workload", `Workload); ("fullmesh", `Fullmesh) ]

(* A scaled-down run of each experiment, sized so tracing it stays within
   one ring buffer and finishes in seconds. *)
let run_small exp seed =
  match exp with
  | `Fig3 -> ignore (E.Fig3.run ~seed ~requests:200 ~variant:E.Fig3.Userspace ())
  | `Chaos -> ignore (E.Chaos.run_convergence ~seed ~drop:0.05 ())
  | `Fullmesh -> ignore (E.Fullmesh_recovery.run ~seed ())
  | `Workload ->
      let open Smapp_workload in
      ignore
        (Workload.run { Workload.default_config with Workload.conns = 200; Workload.seed })

let print_trace_report out width =
  write_trace out;
  Printf.printf "\n%s\n" (Obs.Trace.timeline ~width ());
  print_string (Obs.Trace.summary_table ())

let run_trace exp out seed requests width =
  match exp with
  | `Fig3 ->
      (* kernel vs userspace with tracing: the report decomposes the extra
         userspace reaction time into its two Netlink crossings *)
      let b = E.Fig3.traced_breakdown ~seed ~requests () in
      print_trace_report out width;
      let model = E.Fig3.breakdown_model_us b in
      Printf.printf "\nFig 3 reaction-gap decomposition (%d requests):\n"
        b.E.Fig3.b_requests;
      Printf.printf "  measured userspace extra  : %7.2f us\n" b.E.Fig3.b_extra_us;
      Printf.printf "  netlink k->u crossing     : %7.2f us\n" b.E.Fig3.b_up_us;
      Printf.printf "  netlink u->k crossing     : %7.2f us\n" b.E.Fig3.b_down_us;
      Printf.printf "  in-kernel reaction skipped: %7.2f us\n" (-.b.E.Fig3.b_kernel_pm_us);
      (match b.E.Fig3.b_decision_rtt_us with
      | Some d ->
          Printf.printf "  decision round trip       : %7.2f us (event->command->reply)\n" d
      | None -> ());
      let ratio = if b.E.Fig3.b_extra_us = 0.0 then infinity else model /. b.E.Fig3.b_extra_us in
      Printf.printf "  component sum %.2f us = %.0f%% of the measured gap%s\n" model
        (ratio *. 100.)
        (if Float.abs (ratio -. 1.0) <= 0.2 then " (within 20%)" else " (OUTSIDE 20%)");
      if Float.abs (ratio -. 1.0) > 0.2 then exit 1
  | (`Chaos | `Workload | `Fullmesh) as exp ->
      with_obs (fun () ->
          run_small exp seed;
          print_trace_report out width)

let trace_cmd =
  let exp =
    Arg.(
      required
      & pos 0 (some exp_conv) None
      & info [] ~docv:"EXPERIMENT" ~doc:"One of fig3, chaos, workload, fullmesh.")
  in
  let out =
    Arg.(
      value & opt string "smapp_trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Chrome trace output path.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let requests =
    Arg.(value & opt int 300 & info [ "requests" ] ~doc:"GET count (fig3 only).")
  in
  let width =
    Arg.(value & opt int 72 & info [ "width" ] ~doc:"ASCII timeline width in columns.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run an experiment with tracing on: Chrome trace file, ASCII span \
          timeline, and per-span statistics")
    Term.(const run_trace $ exp $ out $ seed $ requests $ width)

let run_metrics exp seed json =
  let saved = Atomic.get Obs.Metrics.enabled in
  Atomic.set Obs.Metrics.enabled true;
  Obs.Metrics.clear ();
  Fun.protect
    ~finally:(fun () -> Atomic.set Obs.Metrics.enabled saved)
    (fun () -> run_small exp seed);
  if json then print_endline (Stats.Json.to_string (Obs.Metrics.to_json ()))
  else print_string (Obs.Metrics.to_prometheus ())

let metrics_cmd =
  let exp =
    Arg.(
      value
      & pos 0 exp_conv `Workload
      & info [] ~docv:"EXPERIMENT" ~doc:"One of fig3, chaos, workload, fullmesh.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the registry as a JSON array instead of the Prometheus \
             text exposition (for benchdiff and CI).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run an experiment with the metrics registry on and print the \
          Prometheus text exposition (or JSON with $(b,--json))")
    Term.(const run_metrics $ exp $ seed $ json)

(* --- prof: the profiling front door ------------------------------------------- *)

(* Run the scale-out workload with [Smapp_obs.Prof] on and print the
   self-time/allocation report. The run sits inside one root frame, and
   the same call is bracketed externally with the wall clock and
   [Gc.allocated_bytes]: the report's totals must reconcile with both
   within 5%, or the profiler's attribution can't be trusted and we exit
   non-zero. (The bound is loose because the external bracket also sees
   the profiler's own bookkeeping and anything outside event dispatch.) *)
let run_prof conns seed shards minor_heap json =
  apply_minor_heap minor_heap;
  if shards < 1 then invalid_arg "--shards expects a positive count";
  let open Smapp_workload in
  let config =
    {
      Workload.default_config with
      Workload.conns;
      arrival_rate = float_of_int conns;
      flow_dist = Workload.Fixed 200_000;
      seed;
      shards;
    }
  in
  Printf.printf "prof: %d conns, seed %d%s, profiling on\n\n" conns seed
    (if shards > 1 then Printf.sprintf ", %d shards (sequential windows)" shards
     else "");
  let saved = Atomic.get Obs.Prof.enabled in
  Atomic.set Obs.Prof.enabled true;
  Obs.Prof.reset ();
  let result, wall_ns, alloc_bytes =
    Fun.protect
      ~finally:(fun () -> Atomic.set Obs.Prof.enabled saved)
      (fun () ->
        let a0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        let r = Obs.Prof.with_frame "run" (fun () -> Workload.run config) in
        let t1 = Unix.gettimeofday () in
        let a1 = Gc.allocated_bytes () in
        (r, (t1 -. t0) *. 1e9, a1 -. a0))
  in
  let rep = Obs.Prof.report () in
  print_string (Obs.Prof.render rep);
  Printf.printf "\nengine: %d events dispatched (profiler saw %d)\n"
    result.Workload.engine_events rep.Obs.Prof.p_events;
  (* reconciliation: report totals vs the external bracket *)
  let rel a b = if b = 0.0 then Float.abs a else Float.abs (a -. b) /. b in
  let self_ns = List.fold_left (fun acc f -> acc +. Obs.Prof.sum_self_ns f) 0.0 rep.Obs.Prof.p_frames in
  let total_ns = Obs.Prof.total_ns rep in
  let total_bytes = Obs.Prof.total_bytes rep in
  let ns_err = rel total_ns wall_ns in
  let bytes_err = rel total_bytes alloc_bytes in
  let self_err = rel self_ns total_ns in
  Printf.printf
    "reconcile: wall %.3f ms vs frames %.3f ms (%.2f%% off); Gc.allocated_bytes \
     %.2f MB vs frames %.2f MB (%.2f%% off); self-sum %.2f%% off total\n"
    (wall_ns /. 1e6) (total_ns /. 1e6) (ns_err *. 100.0) (alloc_bytes /. 1e6)
    (total_bytes /. 1e6) (bytes_err *. 100.0) (self_err *. 100.0);
  (match json with
  | None -> ()
  | Some path ->
      Stats.Json.to_file path
        (Stats.Json.Obj
           [
             ("conns", Stats.Json.Int conns);
             ("seed", Stats.Json.Int seed);
             ("shards", Stats.Json.Int shards);
             ("wall_ns", Stats.Json.Float wall_ns);
             ("allocated_bytes", Stats.Json.Float alloc_bytes);
             ("report", Obs.Prof.report_json rep);
           ]);
      Printf.printf "wrote %s\n" path);
  Obs.Prof.reset ();
  if ns_err > 0.05 || bytes_err > 0.05 || self_err > 0.05 then begin
    Printf.printf "prof: reconciliation outside 5%% — attribution untrustworthy\n";
    exit 1
  end

let prof_cmd =
  let conns =
    Arg.(value & opt int 500 & info [ "conns" ] ~doc:"Connections to launch.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard the scenario across $(docv) engines (windows run \
             sequentially so all profiling lands in one scope).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the machine-readable report to $(docv).")
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:
         "Run the scale-out workload under the profiler: per-subsystem \
          self-time and allocation, per-event-class costs, GC pauses; exits \
          non-zero if the report fails to reconcile with wall time and \
          Gc.allocated_bytes within 5%")
    Term.(const run_prof $ conns $ seed $ shards $ minor_heap_arg $ json)

let main_cmd =
  let doc = "SMAPP experiments: smart Multipath TCP path management" in
  Cmd.group (Cmd.info "smapp" ~doc)
    [
      fig2a_cmd;
      fig2b_cmd;
      fig2c_cmd;
      fig3_cmd;
      backoff_cmd;
      fullmesh_cmd;
      chaos_cmd;
      workload_cmd;
      check_cmd;
      analyze_cmd;
      trace_cmd;
      metrics_cmd;
      prof_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
